// Package analysis is a self-contained mini framework for the
// project-specific vet suite run by cmd/geodabs-vet.
//
// It mirrors the shape of golang.org/x/tools/go/analysis — an Analyzer
// holds a Run function that inspects one type-checked package through a
// Pass and reports Diagnostics — but is built only on the standard
// library so the suite works in hermetic builds with no module
// downloads. Packages are loaded by internal/analysis/load and analyzer
// unit tests run fixture modules through internal/analysis/analyzertest.
//
// Two comment directives drive the suite:
//
//	//geodabs:vet-ignore <reason>
//	    Suppresses diagnostics on the same line, on the line directly
//	    below a standalone directive comment, or (when placed in a
//	    function's doc comment) anywhere inside that function. The
//	    reason is mandatory; a bare directive is itself reported.
//
//	//geodabs:noalloc
//	    Marks a function whose body must not heap-allocate. Checked by
//	    the noalloc analyzer against the compiler's escape analysis.
//
// The enforced invariants are catalogued in docs/invariants.md.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one vet check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, e.g. "lockhold".
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run inspects the package held by pass and reports findings via
	// pass.Reportf. It returns an error only for analyzer malfunction,
	// not for findings.
	Run func(pass *Pass) error
}

// A Pass presents one type-checked package to one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	suppress    *Suppressions
	diagnostics []Diagnostic
}

// A Diagnostic is one finding, tied to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// NewPass assembles a pass over a loaded package. The suppression index
// may be nil, in which case nothing is suppressed.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, sup *Suppressions) *Pass {
	return &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info, suppress: sup}
}

// Reportf records a diagnostic at pos unless a vet-ignore directive
// covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.suppress != nil && p.suppress.Covers(p.Fset, pos) {
		return
	}
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostics returns the findings reported so far, in source order.
func (p *Pass) Diagnostics() []Diagnostic {
	sort.SliceStable(p.diagnostics, func(i, j int) bool {
		return p.diagnostics[i].Pos < p.diagnostics[j].Pos
	})
	return p.diagnostics
}

// IgnoreDirective is the comment prefix that suppresses a finding.
const IgnoreDirective = "//geodabs:vet-ignore"

// NoallocDirective marks a function checked by the noalloc analyzer.
const NoallocDirective = "//geodabs:noalloc"

var ignoreRE = regexp.MustCompile(`^//geodabs:vet-ignore(?:\s+(.*))?$`)

// Suppressions indexes every vet-ignore directive in a package.
type Suppressions struct {
	// lines maps filename to the set of line numbers covered by a
	// same-line or line-above directive.
	lines map[string]map[int]bool
	// spans holds [start, end] line ranges covered by a directive in a
	// function's doc comment.
	spans map[string][][2]int
	// Bare lists directives missing the mandatory reason; the driver
	// reports these as errors.
	Bare []token.Pos
}

// CollectSuppressions scans the files of one package for vet-ignore
// directives.
func CollectSuppressions(fset *token.FileSet, files []*ast.File) *Suppressions {
	s := &Suppressions{
		lines: make(map[string]map[int]bool),
		spans: make(map[string][][2]int),
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				if strings.TrimSpace(m[1]) == "" {
					s.Bare = append(s.Bare, c.Pos())
					continue
				}
				pos := fset.Position(c.Pos())
				ln := s.lines[pos.Filename]
				if ln == nil {
					ln = make(map[int]bool)
					s.lines[pos.Filename] = ln
				}
				// Cover the directive's own line (trailing comment) and
				// the next line (standalone comment above a statement).
				ln[pos.Line] = true
				ln[pos.Line+1] = true
			}
		}
		// A directive inside a function's doc comment covers the whole
		// function body.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				m := ignoreRE.FindStringSubmatch(c.Text)
				if m == nil || strings.TrimSpace(m[1]) == "" {
					continue
				}
				start := fset.Position(fd.Pos())
				end := fset.Position(fd.End())
				s.spans[start.Filename] = append(s.spans[start.Filename], [2]int{start.Line, end.Line})
			}
		}
	}
	return s
}

// Covers reports whether a directive suppresses diagnostics at pos.
func (s *Suppressions) Covers(fset *token.FileSet, pos token.Pos) bool {
	p := fset.Position(pos)
	return s.CoversLine(p.Filename, p.Line)
}

// CoversLine reports whether a directive suppresses diagnostics on the
// given file line. Used by checks (noalloc) whose findings come from
// compiler output rather than token positions.
func (s *Suppressions) CoversLine(filename string, line int) bool {
	if s.lines[filename][line] {
		return true
	}
	for _, span := range s.spans[filename] {
		if line >= span[0] && line <= span[1] {
			return true
		}
	}
	return false
}

// HasNoallocDirective reports whether a function declaration's doc
// comment carries the //geodabs:noalloc directive.
func HasNoallocDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(c.Text)
		if text == NoallocDirective || strings.HasPrefix(text, NoallocDirective+" ") {
			return true
		}
	}
	return false
}

// CalleeFullName resolves the fully qualified name of a call's static
// callee, in the form produced by (*types.Func).FullName — e.g.
// "(*sync.Mutex).Lock", "net.Dial", or
// "(geodabs/internal/wal.segmentFile).Sync" for interface methods. It
// returns "" for dynamic calls (function values), conversions, and
// builtins.
func CalleeFullName(info *types.Info, call *ast.CallExpr) string {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel]
		}
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return ""
	}
	return fn.FullName()
}
