// Package a seeds errlatch violations and clean patterns.
package a

import "os"

func badSync(f *os.File) {
	f.Sync() // want `error return of \(\*os.File\).Sync discarded`
}

func badWrite(f *os.File, b []byte) {
	f.Write(b) // want `error return of \(\*os.File\).Write discarded`
}

func badTruncate(f *os.File) {
	f.Truncate(0) // want `error return of \(\*os.File\).Truncate discarded`
}

func badClose(f *os.File) {
	f.Close() // want `error return of \(\*os.File\).Close discarded`
}

func badDeferSync(f *os.File) {
	defer f.Sync() // want `deferred \(\*os.File\).Sync discards its error`
}

func goodChecked(f *os.File, b []byte) error {
	if _, err := f.Write(b); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

// goodDeferClose is the idiomatic read-path cleanup.
func goodDeferClose(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return nil
}

// goodExplicitDiscard documents the discard at the call site.
func goodExplicitDiscard(f *os.File) {
	_ = f.Sync()
}

func ignoredCrashSim(f *os.File) {
	f.Close() //geodabs:vet-ignore fixture: crash simulation discards close error
}
