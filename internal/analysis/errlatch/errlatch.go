// Package errlatch flags ignored error returns from write-side file
// operations — the fsyncgate class from the PR 7 WAL review, where one
// unchecked fsync error path silently dropped acked records.
//
// Flagged: a statement-position call to Sync, Write, WriteString,
// WriteAt, Truncate, or Close on an *os.File (or the WAL's segmentFile
// interface) whose error result is discarded, and a deferred Sync,
// Write, or Truncate (whose error can never be observed). Two idioms
// are deliberately allowed: `defer f.Close()` on read paths, and an
// explicit `_ = f.Sync()` assignment, which documents the discard at
// the call site (crash-simulation helpers use it). Everything else
// either checks the error or carries a //geodabs:vet-ignore reason.
package errlatch

import (
	"go/ast"
	"strings"

	"geodabs/internal/analysis"
)

// Analyzer is the errlatch check.
var Analyzer = &analysis.Analyzer{
	Name: "errlatch",
	Doc:  "flag discarded error returns from write-side file operations",
	Run:  run,
}

// watched maps callee full names whose error result must be used.
var watched = map[string]bool{
	"(*os.File).Sync":        true,
	"(*os.File).Write":       true,
	"(*os.File).WriteString": true,
	"(*os.File).WriteAt":     true,
	"(*os.File).Truncate":    true,
	"(*os.File).Close":       true,

	"(geodabs/internal/wal.segmentFile).Sync":     true,
	"(geodabs/internal/wal.segmentFile).Write":    true,
	"(geodabs/internal/wal.segmentFile).Truncate": true,
	"(geodabs/internal/wal.segmentFile).Close":    true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					if name := watchedCallee(pass, call); name != "" {
						pass.Reportf(call.Pos(), "error return of %s discarded; check it or assign to _ with a reason", name)
					}
				}
			case *ast.DeferStmt:
				name := watchedCallee(pass, s.Call)
				if name == "" || strings.HasSuffix(name, ".Close") {
					// defer f.Close() is idiomatic on read paths; write
					// paths close explicitly and check.
					return true
				}
				pass.Reportf(s.Call.Pos(), "deferred %s discards its error; call it explicitly and check", name)
			}
			return true
		})
	}
	return nil
}

func watchedCallee(pass *analysis.Pass, call *ast.CallExpr) string {
	name := analysis.CalleeFullName(pass.TypesInfo, call)
	if watched[name] {
		return name
	}
	return ""
}
