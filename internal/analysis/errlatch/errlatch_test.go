package errlatch_test

import (
	"testing"

	"geodabs/internal/analysis/analyzertest"
	"geodabs/internal/analysis/errlatch"
)

func TestErrlatch(t *testing.T) {
	analyzertest.Run(t, "testdata", errlatch.Analyzer, "./...")
}
