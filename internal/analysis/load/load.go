// Package load type-checks Go packages for the geodabs-vet analyzer
// suite without golang.org/x/tools/go/packages.
//
// It shells out to `go list -e -export -deps -json`, which both
// enumerates the packages matching the given patterns and compiles
// export data for every dependency into the build cache. Target
// packages (the non-dep, in-module matches) are then parsed from source
// and type-checked with the standard gc importer, whose lookup function
// serves each dependency's export data from the path `go list`
// reported. This keeps the loader hermetic: it needs only the Go
// toolchain and the module being analyzed, never a network fetch.
//
// Test files are not loaded; the vet suite covers production code.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"geodabs/internal/analysis"
)

// A Package is one type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// TypeErrors collects type-checker errors; analyzers still run on
	// packages with errors (best effort), but the driver reports them.
	TypeErrors []error
	// Suppress indexes the package's vet-ignore directives.
	Suppress *analysis.Suppressions
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Dir runs `go list` and all file parsing relative to dir, so patterns
// like ./... resolve against the module rooted there.
func Dir(dir string, patterns ...string) ([]*Package, *token.FileSet, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly,Module,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("parsing go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && p.Module != nil {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (build error in a dependency?)", path)
		}
		return os.Open(exp)
	})

	var pkgs []*Package
	for _, t := range targets {
		if t.Error != nil && len(t.GoFiles) == 0 {
			return nil, nil, fmt.Errorf("package %s: %s", t.ImportPath, t.Error.Err)
		}
		pkg, err := typecheck(fset, imp, t)
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, fset, nil
}

func typecheck(fset *token.FileSet, imp types.Importer, t listPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range t.GoFiles {
		path := filepath.Join(t.Dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", path, err)
		}
		files = append(files, f)
	}

	pkg := &Package{ImportPath: t.ImportPath, Dir: t.Dir, Files: files}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	// Errors are collected via conf.Error; the returned error restates
	// the first one, so it is deliberately dropped here.
	pkg.Types, _ = conf.Check(t.ImportPath, fset, files, pkg.Info)
	pkg.Suppress = analysis.CollectSuppressions(fset, files)
	return pkg, nil
}
