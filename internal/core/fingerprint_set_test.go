package core

import (
	"math/rand"
	"testing"

	"geodabs/internal/geo"
)

// randomWalk synthesizes a GPS-like trajectory: a heading-correlated walk
// with per-point jitter, so grid normalization exercises its debounce and
// jitter-folding branches.
func randomWalk(rng *rand.Rand, n int) []geo.Point {
	pts := make([]geo.Point, n)
	lat, lon := 51.5+rng.Float64()*0.1, -0.1+rng.Float64()*0.1
	heading := rng.Float64() * 6.28
	for i := range pts {
		heading += (rng.Float64() - 0.5) * 0.4
		step := 0.00005 + rng.Float64()*0.00005
		lat += step * 0.8
		lon += step * heading // crude but sufficient: direction drifts
		pts[i] = geo.Point{
			Lat: lat + (rng.Float64()-0.5)*0.00002,
			Lon: lon + (rng.Float64()-0.5)*0.00002,
		}
	}
	return pts
}

// TestFingerprintSetMatchesFingerprint pins the set-only fast path to the
// full pipeline: for any input the two must produce identical sets, or
// index searches and full fingerprints would disagree about the same
// trajectory.
func TestFingerprintSetMatchesFingerprint(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	configs := []Config{
		DefaultConfig(),
		{K: 6, T: 12, NormDepth: 36, PrefixBits: 16, MinCellPoints: 1, SmoothWindow: 0},
		{K: 3, T: 5, NormDepth: 30, PrefixBits: 8, MinCellPoints: 3, SmoothWindow: 7, KeepShort: true},
		{K: 2, T: 2, NormDepth: 40, PrefixBits: 24, MinCellPoints: 2, SmoothWindow: 5},
		func() Config { c := DefaultConfig(); c.Strategy = PrefixCentroid; return c }(),
	}
	for ci, cfg := range configs {
		f := MustFingerprinter(cfg)
		for trial := 0; trial < 20; trial++ {
			pts := randomWalk(rng, rng.Intn(600))
			want := f.Fingerprint(pts).Set
			// Twice, so the second run exercises recycled scratch.
			for round := 0; round < 2; round++ {
				got := f.FingerprintSet(pts)
				if !got.Equals(want) {
					t.Fatalf("config %d trial %d round %d: FingerprintSet differs from Fingerprint().Set (%d vs %d terms)",
						ci, trial, round, got.Cardinality(), want.Cardinality())
				}
			}
		}
		// Degenerate inputs.
		for _, pts := range [][]geo.Point{nil, randomWalk(rng, 1), randomWalk(rng, 3)} {
			want := f.Fingerprint(pts).Set
			if got := f.FingerprintSet(pts); !got.Equals(want) {
				t.Fatalf("config %d: degenerate input (%d points) differs", ci, len(pts))
			}
		}
	}
}

// TestFingerprintSetDoesNotAliasInput guards the no-smoothing path: the
// pooled scratch must never capture (and later scribble over) the
// caller's point slice.
func TestFingerprintSetDoesNotAliasInput(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SmoothWindow = 0
	f := MustFingerprinter(cfg)
	rng := rand.New(rand.NewSource(3))
	pts := randomWalk(rng, 300)
	orig := append([]geo.Point(nil), pts...)
	f.FingerprintSet(pts)
	f.FingerprintSet(randomWalk(rng, 400))
	for i := range pts {
		if pts[i] != orig[i] {
			t.Fatalf("point %d mutated by FingerprintSet", i)
		}
	}
}
