package core

import (
	"math/rand"
	"testing"

	"geodabs/internal/geo"
	"geodabs/internal/trajectory"
)

// TestSamplingRateInvariance checks the claim behind the paper's Fig 4:
// normalization makes trajectories recorded at different sampling rates
// converge to similar fingerprint sets. The same noisy path sampled at
// 1× and 3× density should fingerprint near-identically once resampled
// to a common spatial rate.
func TestSamplingRateInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := MustFingerprinter(DefaultConfig())
	dense := walk(1200, 8, rng) // ~4 m steps after the 3× densification below
	// Down-sample by taking every 3rd point: a slower recorder.
	var sparse []geo.Point
	for i := 0; i < len(dense); i += 3 {
		sparse = append(sparse, dense[i])
	}
	// Resample both to a common 10 m spatial rate before fingerprinting.
	a := f.Fingerprint(trajectory.Resample(dense, 10))
	b := f.Fingerprint(trajectory.Resample(sparse, 10))
	// The two recordings carry independent noise, so the ceiling is the
	// noisy-copy similarity (≈0.4 at this noise level), not 1.
	if j := jaccard(a, b); j < 0.3 {
		t.Errorf("sampling rates diverged: J = %.3f, want ≥ 0.3", j)
	}
	// Without resampling the divergence is real but bounded; with it, the
	// sets should be closer than the raw pair.
	rawA := f.Fingerprint(dense)
	rawB := f.Fingerprint(sparse)
	if jr, j := jaccard(rawA, rawB), jaccard(a, b); j < jr {
		t.Errorf("resampling should not hurt: J=%.3f raw vs %.3f resampled", jr, j)
	}
}

func TestSmooth(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	noisy := walk(200, 20, rng)
	clean := walk(200, 0, nil)
	smoothed := Smooth(noisy, 5)
	if len(smoothed) != len(noisy) {
		t.Fatalf("Smooth changed length: %d → %d", len(noisy), len(smoothed))
	}
	// Smoothing reduces RMS error against the clean path.
	rms := func(pts []geo.Point) float64 {
		var sq float64
		for i := range pts {
			d := geo.Haversine(pts[i], clean[i])
			sq += d * d
		}
		return sq / float64(len(pts))
	}
	if rms(smoothed) >= rms(noisy) {
		t.Errorf("smoothing did not reduce noise: %.1f vs %.1f", rms(smoothed), rms(noisy))
	}
	// Window ≤ 1 is the identity.
	if got := Smooth(noisy, 1); &got[0] != &noisy[0] {
		t.Error("window 1 should return the input slice")
	}
	if got := Smooth(nil, 5); len(got) != 0 {
		t.Errorf("Smooth(nil) = %v", got)
	}
}

func TestNormalizeDebounceAbsorbsJitter(t *testing.T) {
	// A path that flaps across one cell boundary: with debouncing the
	// one-point excursions disappear.
	cfg := DefaultConfig()
	cfg.SmoothWindow = 0 // isolate the debouncing effect
	f := MustFingerprinter(cfg)
	noDebounce := cfg
	noDebounce.MinCellPoints = 1
	g := MustFingerprinter(noDebounce)

	// Build the flapping sequence from two adjacent cell centers.
	aCell := f.Normalize([]geo.Point{london})[0]
	east := geo.Offset(london, 0, 120) // next cell east at 36 bits
	bCell := f.Normalize([]geo.Point{east})[0]
	if aCell.Hash == bCell.Hash {
		t.Fatal("test points landed in the same cell")
	}
	pts := []geo.Point{
		aCell.Center, aCell.Center, aCell.Center,
		bCell.Center, // one-point jitter
		aCell.Center, aCell.Center,
		bCell.Center, bCell.Center, bCell.Center, // genuine move
	}
	with := f.Normalize(pts)
	without := g.Normalize(pts)
	if len(with) != 2 {
		t.Errorf("debounced sequence has %d cells, want 2 (A, B)", len(with))
	}
	if len(without) != 4 {
		t.Errorf("raw sequence has %d cells, want 4 (A, B, A, B)", len(without))
	}
}

func TestNormalizeSinglePointAndShortRuns(t *testing.T) {
	f := MustFingerprinter(DefaultConfig())
	one := f.Normalize([]geo.Point{london})
	if len(one) != 1 || one[0].First != 0 || one[0].Last != 0 {
		t.Errorf("single point normalization = %+v", one)
	}
	if got := f.Normalize(nil); len(got) != 0 {
		t.Errorf("Normalize(nil) = %v", got)
	}
}

func TestGeodabSequenceShortInput(t *testing.T) {
	f := MustFingerprinter(DefaultConfig())
	cells := f.Normalize(walk(30, 0, nil))
	if len(cells) >= f.Config().K {
		cells = cells[:f.Config().K-1]
	}
	if got := f.GeodabSequence(cells); got != nil {
		t.Errorf("GeodabSequence of %d cells = %v, want nil", len(cells), got)
	}
}
