// Package core implements geodabs, the paper's primary contribution
// (§IV): fingerprints that combine geohashing and hashing so that a single
// 32-bit value both localizes a k-gram of trajectory points on the Z-order
// space-filling curve (its geohash prefix) and discriminates the k-gram's
// path and direction (its order-sensitive hash suffix).
//
// The pipeline, mirroring the paper's Figure 4, is
//
//	raw points → grid normalization → k-grams of cells → geodabs
//	           → winnowing → fingerprint set (roaring bitmap)
package core

import (
	"fmt"
	"sync"

	"geodabs/internal/bitmap"
	"geodabs/internal/geo"
	"geodabs/internal/geohash"
	"geodabs/internal/winnow"
)

// GeodabBits is the width of a geodab in bits. The paper encodes geodabs
// on 32 bits so fingerprint sets fit in roaring bitmaps.
const GeodabBits = 32

// PrefixStrategy selects how the geohash prefix of a geodab is derived
// from a k-gram.
type PrefixStrategy uint8

const (
	// PrefixCover uses the covering geohash of the k-gram — "the highest
	// precision geohash that overlaps with the whole set" (paper Fig 3a) —
	// truncated to PrefixBits. K-grams whose cover is shorter than
	// PrefixBits (they straddle a major bisection boundary) fall back to
	// the first cell's prefix to preserve locality.
	PrefixCover PrefixStrategy = iota
	// PrefixCentroid uses the depth-PrefixBits geohash of the k-gram's
	// cell-center centroid. Provided as an ablation of the cover strategy.
	PrefixCentroid
)

// Config parameterizes a Fingerprinter. The zero value is not valid; use
// DefaultConfig as a starting point.
type Config struct {
	// K is the noise threshold: matches shorter than K normalized cells
	// are never detected. The paper uses 6 (≈510 m in London at 36 bits).
	K int
	// T is the guarantee threshold: common runs of at least T cells are
	// always detected. The paper uses 12 (≈1020 m). The winnowing window
	// is w = T−K+1.
	T int
	// NormDepth is the geohash depth, in bits, of the normalization grid.
	// The paper's PR-curve sweep (Fig 8) selects 36.
	NormDepth uint8
	// PrefixBits is the width of the geodab's geohash prefix. The paper
	// shards on 16-bit prefixes (§VI-E).
	PrefixBits uint8
	// Strategy selects the prefix derivation; the default is PrefixCover.
	Strategy PrefixStrategy
	// KeepShort, when set, fingerprints trajectories that normalize to
	// fewer than T cells by selecting a single winnowed geodab instead of
	// dropping them as noise (the paper's strict behaviour).
	KeepShort bool
	// MinCellPoints debounces grid normalization: a cell only enters the
	// normalized sequence once it captures this many consecutive raw
	// points. GPS noise near a cell boundary otherwise injects one-point
	// jitter cells that break every k-gram spanning them. 0 behaves as 1
	// (no debouncing).
	MinCellPoints int
	// SmoothWindow applies a centered moving average of this many raw
	// points before grid snapping, attenuating GPS noise (a window of w
	// divides the noise standard deviation by ≈√w). 0 and 1 disable
	// smoothing. Smoothing and debouncing together form the concrete
	// normalization function N(S) of the paper's §V.
	SmoothWindow int
}

// DefaultConfig returns the configuration the paper's evaluation settled
// on (§VI-A2): 36-bit normalization, k = 6, t = 12, 16-bit prefixes.
func DefaultConfig() Config {
	return Config{
		K: 6, T: 12,
		NormDepth:     36,
		PrefixBits:    16,
		Strategy:      PrefixCover,
		MinCellPoints: 2,
		SmoothWindow:  5,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.K < 2:
		return fmt.Errorf("core: K = %d, need at least 2 to capture ordering", c.K)
	case c.T < c.K:
		return fmt.Errorf("core: T = %d must be ≥ K = %d", c.T, c.K)
	case c.NormDepth < 1 || c.NormDepth > geohash.MaxDepth:
		return fmt.Errorf("core: NormDepth = %d out of range [1, %d]", c.NormDepth, geohash.MaxDepth)
	case c.PrefixBits < 1 || c.PrefixBits >= GeodabBits:
		return fmt.Errorf("core: PrefixBits = %d out of range [1, %d]", c.PrefixBits, GeodabBits-1)
	case c.Strategy != PrefixCover && c.Strategy != PrefixCentroid:
		return fmt.Errorf("core: unknown prefix strategy %d", c.Strategy)
	default:
		return nil
	}
}

// Window returns the winnowing window size w = T−K+1.
func (c Config) Window() int { return c.T - c.K + 1 }

// Cell is one step of a normalized trajectory: a grid cell at NormDepth
// together with the range of raw points that collapsed into it.
type Cell struct {
	Hash   geohash.Hash
	Center geo.Point
	// First and Last delimit (inclusively) the indexes of the raw points
	// normalized into this cell, for mapping motifs back to raw segments.
	First, Last int
}

// Fingerprint is the result of fingerprinting one trajectory.
type Fingerprint struct {
	// Geodabs are the winnowed geodabs in trajectory order. Values may
	// repeat when a trajectory revisits an area in the same direction.
	Geodabs []uint32
	// Positions holds, for each winnowed geodab, the index into Cells of
	// the first cell of its k-gram.
	Positions []int
	// Cells is the normalized cell sequence the geodabs were derived from.
	Cells []Cell
	// Set is the deduplicated fingerprint set used for Jaccard ranking.
	Set *bitmap.Bitmap
}

// Fingerprinter turns trajectories into geodab fingerprints. Its
// configuration is immutable and it is safe for concurrent use (the
// FingerprintSet hot path draws per-call scratch from an internal pool).
type Fingerprinter struct {
	cfg        Config
	suffixMask uint32
	scratch    sync.Pool // *fpScratch
}

// fpScratch is the pooled working state of the set-only fingerprint path:
// the smoothed point buffer, the normalized cell-hash sequence, the
// unwinnowed geodab candidates, and the winnowed positions. Pooling them
// keeps steady-state query fingerprinting free of the per-call slice
// allocations the full Fingerprint pipeline pays.
type fpScratch struct {
	smooth     []geo.Point
	hashes     []geohash.Hash
	candidates []uint32
	positions  []int
}

// NewFingerprinter validates cfg and returns a Fingerprinter.
func NewFingerprinter(cfg Config) (*Fingerprinter, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	f := &Fingerprinter{
		cfg:        cfg,
		suffixMask: uint32(1)<<(GeodabBits-cfg.PrefixBits) - 1,
	}
	f.scratch.New = func() any { return &fpScratch{} }
	return f, nil
}

// MustFingerprinter is NewFingerprinter for configurations known to be
// valid; it panics on error.
func MustFingerprinter(cfg Config) *Fingerprinter {
	f, err := NewFingerprinter(cfg)
	if err != nil {
		panic(err)
	}
	return f
}

// Config returns the fingerprinter's configuration.
func (f *Fingerprinter) Config() Config { return f.cfg }

// Normalize maps raw points onto the geohash grid at NormDepth and removes
// consecutive duplicates, the paper's lightweight normalization (§V-A).
// With MinCellPoints > 1 it additionally debounces boundary jitter: a new
// cell is only committed once that many consecutive points land in it, and
// shorter excursions are folded into the current cell.
func (f *Fingerprinter) Normalize(points []geo.Point) []Cell {
	points = Smooth(points, f.cfg.SmoothWindow)
	cells := make([]Cell, 0, len(points))
	commit := func(h geohash.Hash, first, last int) {
		if n := len(cells); n > 0 && cells[n-1].Hash == h {
			cells[n-1].Last = last
			return
		}
		cells = append(cells, Cell{Hash: h, Center: h.Center(), First: first, Last: last})
	}
	debounce := max(f.cfg.MinCellPoints, 1)
	// pending tracks a candidate run of consecutive points in one cell
	// that has not yet reached the debounce length.
	var pending struct {
		hash  geohash.Hash
		first int
		count int
	}
	flush := func(last int) {
		if pending.count > 0 {
			// The run never reached the debounce length: fold it into the
			// previous cell, or commit it as-is when there is none (the
			// trajectory has to start somewhere).
			if len(cells) > 0 {
				cells[len(cells)-1].Last = last
			} else {
				commit(pending.hash, pending.first, last)
			}
			pending.count = 0
		}
	}
	enc := geohash.NewEncoder(f.cfg.NormDepth)
	for i, p := range points {
		h := enc.Encode(p)
		if n := len(cells); n > 0 && cells[n-1].Hash == h {
			// Returned to the committed cell: the excursion was jitter.
			flush(i - 1)
			cells[n-1].Last = i
			continue
		}
		if pending.count > 0 && pending.hash == h {
			pending.count++
		} else {
			flush(i - 1)
			pending.hash, pending.first, pending.count = h, i, 1
		}
		if pending.count >= debounce || (len(cells) == 0 && debounce == 1) {
			commit(pending.hash, pending.first, i)
			pending.count = 0
		}
	}
	flush(len(points) - 1)
	return cells
}

// Geodab computes the geodab of one k-gram of cells, combining the geohash
// prefix and the order-sensitive hash suffix (paper Fig 3). The caller
// must pass exactly K cells; shorter slices are allowed for testing but
// produce geodabs outside the winnowing guarantees.
func (f *Fingerprinter) Geodab(kgram []Cell) uint32 {
	return f.prefix(kgram)<<(GeodabBits-f.cfg.PrefixBits) | f.suffix(kgram)
}

// prefix derives the PrefixBits-wide spatial prefix.
func (f *Fingerprinter) prefix(kgram []Cell) uint32 {
	p := f.cfg.PrefixBits
	switch f.cfg.Strategy {
	case PrefixCentroid:
		var lat, lon float64
		for _, c := range kgram {
			lat += c.Center.Lat
			lon += c.Center.Lon
		}
		n := float64(len(kgram))
		return uint32(geohash.Encode(geo.Point{Lat: lat / n, Lon: lon / n}, p).Bits)
	default: // PrefixCover
		cover := kgram[0].Hash
		for _, c := range kgram[1:] {
			if cover.Depth < p {
				break
			}
			cover = geohash.CommonPrefix(cover, c.Hash)
		}
		if cover.Depth < p {
			// The k-gram straddles a coarse bisection boundary; anchor the
			// prefix on the first cell to keep the geodab local.
			cover = kgram[0].Hash
		}
		return uint32(cover.Prefix(p).Bits)
	}
}

// suffix hashes the ordered cell ids with FNV-1a so that reversing or
// permuting a k-gram changes the geodab: this is what lets geodabs
// discriminate the direction of travel, unlike bare geohashes.
func (f *Fingerprinter) suffix(kgram []Cell) uint32 {
	h := uint32(fnvOffset32)
	for _, c := range kgram {
		h = fnvCell(h, c.Hash.Bits)
	}
	return h & f.suffixMask
}

const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

// fnvPrime32Cubed is fnvPrime32³ mod 2³²: folding a zero byte is
// h = (h^0)·p = h·p, so three leading zero bytes collapse to one multiply.
const fnvPrime32Cubed uint32 = (fnvPrime32 * fnvPrime32 % (1 << 32)) * fnvPrime32 % (1 << 32)

// fnvCell folds one cell id (big-endian bytes, matching the historical
// byte loop) into a running FNV-1a state. Hand-unrolled: this fold runs
// K times per k-gram and dominates geodab derivation. Cell ids are
// NormDepth ≤ 60 bits; the ≤ 40-bit grids the paper evaluates leave the
// top three bytes zero, which fold to a single multiply.
func fnvCell(h uint32, bits uint64) uint32 {
	if bits < 1<<40 {
		h *= fnvPrime32Cubed
	} else {
		h = (h ^ uint32(bits>>56&0xff)) * fnvPrime32
		h = (h ^ uint32(bits>>48&0xff)) * fnvPrime32
		h = (h ^ uint32(bits>>40&0xff)) * fnvPrime32
	}
	h = (h ^ uint32(bits>>32&0xff)) * fnvPrime32
	h = (h ^ uint32(bits>>24&0xff)) * fnvPrime32
	h = (h ^ uint32(bits>>16&0xff)) * fnvPrime32
	h = (h ^ uint32(bits>>8&0xff)) * fnvPrime32
	h = (h ^ uint32(bits&0xff)) * fnvPrime32
	return h
}

// GeodabSequence computes the unwinnowed geodab of every k-gram of the
// cell sequence, the candidate list C of Algorithm 1.
func (f *Fingerprinter) GeodabSequence(cells []Cell) []uint32 {
	k := f.cfg.K
	if len(cells) < k {
		return nil
	}
	out := make([]uint32, 0, len(cells)-k+1)
	for i := 0; i+k <= len(cells); i++ {
		out = append(out, f.Geodab(cells[i:i+k]))
	}
	return out
}

// Fingerprint runs the full pipeline on a raw point sequence.
// Trajectories that normalize to fewer than T cells return a fingerprint
// with an empty (but non-nil) set unless KeepShort is configured.
func (f *Fingerprinter) Fingerprint(points []geo.Point) *Fingerprint {
	cells := f.Normalize(points)
	candidates := f.GeodabSequence(cells)
	var positions []int
	if f.cfg.KeepShort {
		positions = winnow.SelectShort(candidates, f.cfg.Window())
	} else {
		positions = winnow.Select(candidates, f.cfg.Window())
	}
	fp := &Fingerprint{
		Geodabs:   winnow.Values(candidates, positions),
		Positions: positions,
		Cells:     cells,
		Set:       bitmap.New(),
	}
	fp.Set.AddMany(fp.Geodabs)
	return fp
}

// FingerprintSet computes only the deduplicated fingerprint set of a
// trajectory — the ranked-retrieval hot path, where the positional
// metadata of the full Fingerprint (Geodabs, Positions, Cells) is dead
// weight. It runs the same normalize → k-gram → winnow pipeline and
// returns a set identical to Fingerprint(points).Set, but works in pooled
// scratch buffers, skips the per-cell center decode the PrefixCover
// strategy never reads, and allocates only the returned bitmap.
// PrefixCentroid configurations (an ablation) fall back to the full
// pipeline, which has the cell centers at hand.
//
//geodabs:noalloc
func (f *Fingerprinter) FingerprintSet(points []geo.Point) *bitmap.Bitmap {
	if f.cfg.Strategy != PrefixCover {
		return f.Fingerprint(points).Set
	}
	sc := f.scratch.Get().(*fpScratch)
	defer f.scratch.Put(sc)
	pts := points
	if f.cfg.SmoothWindow > 1 && len(points) > 0 {
		// Smoothing is active: the buffer is the scratch's, not the
		// caller's (smoothInto returns its input untouched otherwise).
		sc.smooth = smoothInto(sc.smooth[:0], points, f.cfg.SmoothWindow)
		pts = sc.smooth
	}
	sc.hashes = f.normalizeHashesInto(sc.hashes[:0], pts)
	sc.candidates = f.geodabsInto(sc.candidates[:0], sc.hashes)
	if f.cfg.KeepShort {
		sc.positions = winnow.SelectShortInto(sc.positions[:0], sc.candidates, f.cfg.Window())
	} else {
		sc.positions = winnow.SelectInto(sc.positions[:0], sc.candidates, f.cfg.Window())
	}
	set := bitmap.New() //geodabs:vet-ignore the documented result allocation: FingerprintSet allocates only the returned bitmap
	for _, p := range sc.positions {
		set.Add(sc.candidates[p])
	}
	return set
}

// normalizeHashesInto is Normalize reduced to the cell-hash sequence: the
// same smoothing-free debounce state machine, with no cell centers and no
// raw-point ranges. It must stay in lockstep with Normalize — the
// equivalence is pinned by TestFingerprintSetMatchesFingerprint.
func (f *Fingerprinter) normalizeHashesInto(hashes []geohash.Hash, points []geo.Point) []geohash.Hash {
	commit := func(h geohash.Hash) {
		if n := len(hashes); n == 0 || hashes[n-1] != h {
			hashes = append(hashes, h)
		}
	}
	debounce := max(f.cfg.MinCellPoints, 1)
	var pending struct {
		hash  geohash.Hash
		count int
	}
	flush := func() {
		if pending.count > 0 {
			if len(hashes) == 0 {
				commit(pending.hash)
			}
			pending.count = 0
		}
	}
	enc := geohash.NewEncoder(f.cfg.NormDepth)
	for _, p := range points {
		h := enc.Encode(p)
		if n := len(hashes); n > 0 && hashes[n-1] == h {
			// Returned to the committed cell: the excursion was jitter.
			flush()
			continue
		}
		if pending.count > 0 && pending.hash == h {
			pending.count++
		} else {
			flush()
			pending.hash, pending.count = h, 1
		}
		if pending.count >= debounce || (len(hashes) == 0 && debounce == 1) {
			commit(pending.hash)
			pending.count = 0
		}
	}
	flush()
	return hashes
}

// geodabsInto appends the geodab of every k-gram of the hash sequence —
// GeodabSequence on the hash-only representation, PrefixCover strategy.
func (f *Fingerprinter) geodabsInto(dst []uint32, hashes []geohash.Hash) []uint32 {
	k := f.cfg.K
	if len(hashes) < k {
		return dst
	}
	p := f.cfg.PrefixBits
	shift := GeodabBits - p
	for i := 0; i+k <= len(hashes); i++ {
		kgram := hashes[i : i+k]
		// Covering prefix, as in prefix().
		cover := kgram[0]
		for _, h := range kgram[1:] {
			if cover.Depth < p {
				break
			}
			cover = geohash.CommonPrefix(cover, h)
		}
		if cover.Depth < p {
			cover = kgram[0]
		}
		// Order-sensitive suffix, as in suffix().
		s := uint32(fnvOffset32)
		for _, h := range kgram {
			s = fnvCell(s, h.Bits)
		}
		dst = append(dst, uint32(cover.Prefix(p).Bits)<<shift|s&f.suffixMask)
	}
	return dst
}

// smoothInto is Smooth appending into dst (same arithmetic, same float
// rounding), so the hot path can recycle the smoothed-point buffer.
// Windows of 0 or 1 return the input slice unchanged.
func smoothInto(dst []geo.Point, points []geo.Point, window int) []geo.Point {
	if window <= 1 || len(points) == 0 {
		return points
	}
	half := window / 2
	for i := range points {
		lo, hi := max(0, i-half), min(len(points), i+half+1)
		var lat, lon float64
		for _, p := range points[lo:hi] {
			lat += p.Lat
			lon += p.Lon
		}
		n := float64(hi - lo)
		dst = append(dst, geo.Point{Lat: lat / n, Lon: lon / n})
	}
	return dst
}

// Smooth returns the trajectory filtered with a centered moving average of
// the given window (in points). Windows of 0 or 1 return the input slice
// unchanged. Edges use the available shorter windows, so the first and
// last points stay anchored near their raw positions.
func Smooth(points []geo.Point, window int) []geo.Point {
	if window <= 1 || len(points) == 0 {
		return points
	}
	out := make([]geo.Point, len(points))
	half := window / 2
	for i := range points {
		lo, hi := max(0, i-half), min(len(points), i+half+1)
		var lat, lon float64
		for _, p := range points[lo:hi] {
			lat += p.Lat
			lon += p.Lon
		}
		n := float64(hi - lo)
		out[i] = geo.Point{Lat: lat / n, Lon: lon / n}
	}
	return out
}

// PrefixOf extracts the geohash prefix of a geodab as a geohash.Hash of
// depth prefixBits. The sharding layer uses it to place postings on the
// space-filling curve.
func PrefixOf(geodab uint32, prefixBits uint8) geohash.Hash {
	return geohash.Hash{
		Bits:  uint64(geodab >> (GeodabBits - prefixBits)),
		Depth: prefixBits,
	}
}
