package core

import (
	"math/rand"
	"testing"

	"geodabs/internal/geo"
	"geodabs/internal/geohash"
)

var london = geo.Point{Lat: 51.5074, Lon: -0.1278}

// walk builds a raw 1 Hz-like trajectory heading diagonally north-east,
// stepping ~14 m per point so several points land in each 36-bit cell.
// A diagonal heading avoids running exactly along one grid boundary, which
// is pathological for any grid normalization (paper §V-A).
func walk(n int, noise float64, rng *rand.Rand) []geo.Point {
	pts := make([]geo.Point, n)
	for i := range pts {
		dn, de := float64(i)*10, float64(i)*10
		if noise > 0 {
			dn += rng.NormFloat64() * noise
			de += rng.NormFloat64() * noise
		}
		pts[i] = geo.Offset(london, dn, de)
	}
	return pts
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Config)
		wantErr bool
	}{
		{"default", func(c *Config) {}, false},
		{"k-too-small", func(c *Config) { c.K = 1 }, true},
		{"t-below-k", func(c *Config) { c.T = 3 }, true},
		{"t-equals-k", func(c *Config) { c.T = c.K }, false},
		{"depth-zero", func(c *Config) { c.NormDepth = 0 }, true},
		{"depth-too-big", func(c *Config) { c.NormDepth = 61 }, true},
		{"prefix-zero", func(c *Config) { c.PrefixBits = 0 }, true},
		{"prefix-32", func(c *Config) { c.PrefixBits = 32 }, true},
		{"bad-strategy", func(c *Config) { c.Strategy = 99 }, true},
		{"centroid", func(c *Config) { c.Strategy = PrefixCentroid }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			err := cfg.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
			if _, err2 := NewFingerprinter(cfg); (err2 != nil) != tt.wantErr {
				t.Errorf("NewFingerprinter error = %v, wantErr %v", err2, tt.wantErr)
			}
		})
	}
}

func TestMustFingerprinterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustFingerprinter should panic on invalid config")
		}
	}()
	MustFingerprinter(Config{})
}

func TestWindow(t *testing.T) {
	if got := DefaultConfig().Window(); got != 7 {
		t.Errorf("Window = %d, want 7 (t=12, k=6)", got)
	}
}

func TestNormalizeDeduplicates(t *testing.T) {
	f := MustFingerprinter(DefaultConfig())
	pts := walk(100, 0, nil)
	cells := f.Normalize(pts)
	if len(cells) == 0 || len(cells) >= len(pts) {
		t.Fatalf("normalization should shrink the sequence: %d cells from %d points", len(cells), len(pts))
	}
	for i := 1; i < len(cells); i++ {
		if cells[i].Hash == cells[i-1].Hash {
			t.Fatalf("consecutive duplicate cell at %d", i)
		}
	}
	// Point ranges must tile the raw sequence.
	next := 0
	for i, c := range cells {
		if c.First != next {
			t.Fatalf("cell %d starts at point %d, want %d", i, c.First, next)
		}
		if c.Last < c.First {
			t.Fatalf("cell %d has inverted range", i)
		}
		next = c.Last + 1
	}
	if next != len(pts) {
		t.Fatalf("cells cover %d points, want %d", next, len(pts))
	}
	// Centers must be the cell centers.
	for i, c := range cells {
		if c.Center != c.Hash.Center() {
			t.Fatalf("cell %d center mismatch", i)
		}
	}
}

func TestNormalizeAbsorbsNoise(t *testing.T) {
	// Two noisy copies of the same path should normalize to mostly equal
	// cell sequences at 36 bits (cells ≈95×76 m vs 10 m noise).
	rng := rand.New(rand.NewSource(42))
	f := MustFingerprinter(DefaultConfig())
	a := f.Normalize(walk(300, 10, rng))
	b := f.Normalize(walk(300, 10, rng))
	inter := 0
	seen := map[uint64]bool{}
	for _, c := range a {
		seen[c.Hash.Bits] = true
	}
	for _, c := range b {
		if seen[c.Hash.Bits] {
			inter++
		}
	}
	if frac := float64(inter) / float64(len(b)); frac < 0.7 {
		t.Errorf("only %.0f%% of cells shared between noisy copies", frac*100)
	}
}

func TestGeodabDeterministic(t *testing.T) {
	f := MustFingerprinter(DefaultConfig())
	cells := f.Normalize(walk(60, 0, nil))
	k := f.Config().K
	g1 := f.Geodab(cells[:k])
	g2 := f.Geodab(cells[:k])
	if g1 != g2 {
		t.Error("geodab of identical k-grams differs")
	}
}

func TestGeodabPrefixIsLocal(t *testing.T) {
	f := MustFingerprinter(DefaultConfig())
	cells := f.Normalize(walk(60, 0, nil))
	k := f.Config().K
	g := f.Geodab(cells[:k])
	prefix := PrefixOf(g, f.Config().PrefixBits)
	// The prefix cell must contain the k-gram's first cell center.
	if !prefix.Contains(cells[0].Center) {
		t.Errorf("prefix %s does not contain the k-gram", prefix)
	}
	// And it must equal the depth-16 geohash of the area.
	want := geohash.Encode(london, 16)
	if prefix != want {
		t.Errorf("prefix = %v, want %v", prefix, want)
	}
}

func TestGeodabDiscriminatesDirection(t *testing.T) {
	f := MustFingerprinter(DefaultConfig())
	cells := f.Normalize(walk(60, 0, nil))
	k := f.Config().K
	kgram := cells[:k]
	reversed := make([]Cell, k)
	for i := range kgram {
		reversed[i] = kgram[k-1-i]
	}
	g, rg := f.Geodab(kgram), f.Geodab(reversed)
	if g == rg {
		t.Error("geodab does not discriminate direction")
	}
	// Same area ⇒ same prefix; different order ⇒ different suffix.
	p := f.Config().PrefixBits
	if g>>(GeodabBits-p) != rg>>(GeodabBits-p) {
		t.Error("reversed k-gram changed the spatial prefix")
	}
}

func TestCentroidStrategy(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Strategy = PrefixCentroid
	f := MustFingerprinter(cfg)
	cells := f.Normalize(walk(60, 0, nil))
	g := f.Geodab(cells[:cfg.K])
	prefix := PrefixOf(g, cfg.PrefixBits)
	if !prefix.Contains(london) {
		t.Errorf("centroid prefix %s is not local", prefix)
	}
}

func TestFingerprintPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := MustFingerprinter(DefaultConfig())
	fp := f.Fingerprint(walk(600, 15, rng))
	if len(fp.Geodabs) == 0 {
		t.Fatal("no fingerprints extracted")
	}
	if len(fp.Geodabs) != len(fp.Positions) {
		t.Fatalf("geodabs/positions length mismatch: %d vs %d", len(fp.Geodabs), len(fp.Positions))
	}
	// Winnowing should select a fraction ≈2/(w+1) of candidates.
	candidates := len(fp.Cells) - f.Config().K + 1
	if len(fp.Geodabs) >= candidates {
		t.Errorf("winnowing selected %d of %d candidates", len(fp.Geodabs), candidates)
	}
	// Positions reference k-gram starts.
	for i, p := range fp.Positions {
		if p < 0 || p+f.Config().K > len(fp.Cells) {
			t.Fatalf("position %d out of range", p)
		}
		if i > 0 && p <= fp.Positions[i-1] {
			t.Fatalf("positions not increasing at %d", i)
		}
		// Recomputing the geodab at the position must reproduce it.
		if g := f.Geodab(fp.Cells[p : p+f.Config().K]); g != fp.Geodabs[i] {
			t.Fatalf("geodab at position %d does not match", p)
		}
	}
	// The set holds exactly the distinct geodab values.
	distinct := map[uint32]bool{}
	for _, g := range fp.Geodabs {
		distinct[g] = true
	}
	if fp.Set.Cardinality() != len(distinct) {
		t.Errorf("set cardinality %d, want %d", fp.Set.Cardinality(), len(distinct))
	}
}

func TestFingerprintShortTrajectory(t *testing.T) {
	f := MustFingerprinter(DefaultConfig())
	short := walk(30, 0, nil) // ~4 cells < T
	fp := f.Fingerprint(short)
	if fp.Set.Cardinality() != 0 {
		t.Errorf("strict fingerprinter should drop short trajectories, got %d", fp.Set.Cardinality())
	}
	cfg := DefaultConfig()
	cfg.KeepShort = true
	if kept := MustFingerprinter(cfg).Fingerprint(short); kept.Set.Cardinality() == 0 {
		t.Error("KeepShort fingerprinter should keep short trajectories")
	}
	// Genuinely empty input stays empty either way.
	if fp := MustFingerprinter(cfg).Fingerprint(nil); fp.Set.Cardinality() != 0 {
		t.Error("empty input should have no fingerprints")
	}
}

func TestFingerprintSimilarTrajectoriesOverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := MustFingerprinter(DefaultConfig())
	a := f.Fingerprint(walk(800, 15, rng))
	b := f.Fingerprint(walk(800, 15, rng))
	c := f.Fingerprint(reversePoints(walk(800, 15, rng)))

	sim := jaccard(a, b)
	rev := jaccard(a, c)
	if sim < 0.08 {
		t.Errorf("similar trajectories share too little: J = %.3f", sim)
	}
	if rev > sim/3 {
		t.Errorf("reverse direction too similar: J = %.3f vs %.3f", rev, sim)
	}
}

func jaccard(a, b *Fingerprint) float64 {
	inter := 0
	seen := map[uint32]bool{}
	a.Set.Iterate(func(v uint32) bool { seen[v] = true; return true })
	union := a.Set.Cardinality()
	b.Set.Iterate(func(v uint32) bool {
		if seen[v] {
			inter++
		} else {
			union++
		}
		return true
	})
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

func reversePoints(pts []geo.Point) []geo.Point {
	out := make([]geo.Point, len(pts))
	for i, p := range pts {
		out[len(pts)-1-i] = p
	}
	return out
}

func TestFingerprinterConcurrentUse(t *testing.T) {
	f := MustFingerprinter(DefaultConfig())
	pts := walk(400, 0, nil)
	want := f.Fingerprint(pts)
	done := make(chan *Fingerprint, 8)
	for i := 0; i < 8; i++ {
		go func() { done <- f.Fingerprint(pts) }()
	}
	for i := 0; i < 8; i++ {
		got := <-done
		if !got.Set.Equals(want.Set) {
			t.Fatal("concurrent fingerprinting is not deterministic")
		}
	}
}

func BenchmarkFingerprint1000Points(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	f := MustFingerprinter(DefaultConfig())
	pts := walk(1000, 15, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Fingerprint(pts)
	}
}
