package bitmap

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestSerializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	tests := []struct {
		name  string
		build func() *Bitmap
	}{
		{"empty", New},
		{"small-array", func() *Bitmap { return FromSlice([]uint32{1, 5, 70000}) }},
		{"dense-bitmap", func() *Bitmap {
			b := New()
			for i := 0; i < 6000; i++ {
				b.Add(uint32(i * 2))
			}
			return b
		}},
		{"runs", func() *Bitmap {
			b := New()
			for i := 0; i < 9000; i++ {
				b.Add(uint32(i))
			}
			b.RunOptimize()
			return b
		}},
		{"mixed-random", func() *Bitmap {
			b, _ := randomSets(rng, 20000)
			b.RunOptimize()
			return b
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			orig := tt.build()
			var buf bytes.Buffer
			n, err := orig.WriteTo(&buf)
			if err != nil {
				t.Fatalf("WriteTo: %v", err)
			}
			if n != int64(buf.Len()) {
				t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
			}
			got := New()
			if _, err := got.ReadFrom(&buf); err != nil {
				t.Fatalf("ReadFrom: %v", err)
			}
			if !got.Equals(orig) {
				t.Errorf("round trip lost data: %d vs %d values", got.Cardinality(), orig.Cardinality())
			}
		})
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	tests := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad-magic", []byte{1, 2, 3, 4, 1, 0, 0, 0, 0}},
		{"truncated", func() []byte {
			var buf bytes.Buffer
			b := FromSlice([]uint32{1, 2, 3})
			if _, err := b.WriteTo(&buf); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()[:buf.Len()-2]
		}()},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			b := New()
			if _, err := b.ReadFrom(bytes.NewReader(tt.data)); err == nil {
				t.Error("ReadFrom should fail")
			}
		})
	}
}

func TestReadFromRejectsBadVersion(t *testing.T) {
	var buf bytes.Buffer
	b := FromSlice([]uint32{1})
	if _, err := b.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 99 // version byte
	if _, err := New().ReadFrom(bytes.NewReader(data)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("want version error, got %v", err)
	}
}

func TestReadFromReplacesContents(t *testing.T) {
	var buf bytes.Buffer
	if _, err := FromSlice([]uint32{42}).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := FromSlice([]uint32{1, 2, 3})
	if _, err := b.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if b.Cardinality() != 1 || !b.Contains(42) {
		t.Errorf("ReadFrom should replace contents, got %v", b.ToSlice())
	}
}

func BenchmarkAndCardinalitySparse(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x, _ := randomSets(rng, 200)
	y, _ := randomSets(rng, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = AndCardinality(x, y)
	}
}

func BenchmarkAndCardinalityDense(b *testing.B) {
	x, y := New(), New()
	for i := 0; i < 100000; i++ {
		if i%2 == 0 {
			x.Add(uint32(i))
		}
		if i%3 == 0 {
			y.Add(uint32(i))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = AndCardinality(x, y)
	}
}

func BenchmarkJaccardDistance(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x, _ := randomSets(rng, 1000)
	y, _ := randomSets(rng, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = JaccardDistance(x, y)
	}
}

func BenchmarkAdd(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	values := make([]uint32, 10000)
	for i := range values {
		values[i] = rng.Uint32()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm := New()
		bm.AddMany(values)
	}
}
