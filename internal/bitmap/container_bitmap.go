package bitmap

import "math/bits"

// bitmapWords is the number of 64-bit words in a bitmap container
// (64 Ki values / 64 bits per word).
const bitmapWords = 1024

// bitmapContainer stores a chunk as a 64-kilobit bitset with a cached
// cardinality. It is the representation of choice for dense chunks
// (> arrayMaxSize values).
type bitmapContainer struct {
	words [bitmapWords]uint64
	card  int
}

var _ container = (*bitmapContainer)(nil)

func newBitmapContainer() *bitmapContainer { return &bitmapContainer{} }

func (b *bitmapContainer) set(v uint16) {
	w, bit := v>>6, uint64(1)<<(v&63)
	if b.words[w]&bit == 0 {
		b.words[w] |= bit
		b.card++
	}
}

func (b *bitmapContainer) unset(v uint16) {
	w, bit := v>>6, uint64(1)<<(v&63)
	if b.words[w]&bit != 0 {
		b.words[w] &^= bit
		b.card--
	}
}

func (b *bitmapContainer) flip(v uint16) {
	w, bit := v>>6, uint64(1)<<(v&63)
	if b.words[w]&bit != 0 {
		b.card--
	} else {
		b.card++
	}
	b.words[w] ^= bit
}

func (b *bitmapContainer) contains(v uint16) bool {
	return b.words[v>>6]&(uint64(1)<<(v&63)) != 0
}

func (b *bitmapContainer) cardinality() int { return b.card }

func (b *bitmapContainer) add(v uint16) container {
	b.set(v)
	return b
}

func (b *bitmapContainer) remove(v uint16) container {
	b.unset(v)
	if b.card <= arrayMaxSize {
		return asArray(b)
	}
	return b
}

func (b *bitmapContainer) iterate(f func(uint16) bool) bool {
	for w, word := range b.words {
		for word != 0 {
			t := bits.TrailingZeros64(word)
			if !f(uint16(w<<6 + t)) {
				return false
			}
			word &= word - 1
		}
	}
	return true
}

func (b *bitmapContainer) clone() container {
	out := *b
	return &out
}

//geodabs:noalloc
func (b *bitmapContainer) countInto(base uint32, counts []uint16, cands []uint32) []uint32 {
	for w, word := range b.words {
		for word != 0 {
			v := uint16(w<<6 + bits.TrailingZeros64(word))
			if counts[v] == 0 {
				cands = append(cands, base|uint32(v))
			}
			counts[v]++
			word &= word - 1
		}
	}
	return cands
}

// fillMany: state is the next value to examine (0 … 65535); the done flag
// disambiguates the wrap after consuming 65535.
func (b *bitmapContainer) fillMany(base uint32, state uint32, buf []uint32) (int, uint32, bool) {
	n := 0
	w := int(state >> 6)
	// Mask off the bits below the resume position in the first word.
	word := b.words[w] &^ (uint64(1)<<(state&63) - 1)
	for {
		for word != 0 {
			if n == len(buf) {
				return n, uint32(w<<6 + bits.TrailingZeros64(word)), false
			}
			t := bits.TrailingZeros64(word)
			buf[n] = base | uint32(w<<6+t)
			n++
			word &= word - 1
		}
		w++
		if w == bitmapWords {
			return n, 0, true
		}
		word = b.words[w]
	}
}

func (b *bitmapContainer) and(o container) container {
	switch other := o.(type) {
	case *bitmapContainer:
		out := newBitmapContainer()
		for i := range out.words {
			out.words[i] = b.words[i] & other.words[i]
			out.card += bits.OnesCount64(out.words[i])
		}
		return shrink(out)
	case *arrayContainer:
		return other.and(b)
	default:
		return b.and(asBitmap(o))
	}
}

func (b *bitmapContainer) andCardinality(o container) int {
	switch other := o.(type) {
	case *bitmapContainer:
		n := 0
		for i := range b.words {
			n += bits.OnesCount64(b.words[i] & other.words[i])
		}
		return n
	case *arrayContainer:
		return other.andCardinality(b)
	default:
		return b.andCardinality(asBitmap(o))
	}
}

func (b *bitmapContainer) or(o container) container {
	switch other := o.(type) {
	case *bitmapContainer:
		out := newBitmapContainer()
		for i := range out.words {
			out.words[i] = b.words[i] | other.words[i]
			out.card += bits.OnesCount64(out.words[i])
		}
		return out
	case *arrayContainer:
		return other.or(b)
	default:
		return b.or(asBitmap(o))
	}
}

func (b *bitmapContainer) andNot(o container) container {
	switch other := o.(type) {
	case *bitmapContainer:
		out := newBitmapContainer()
		for i := range out.words {
			out.words[i] = b.words[i] &^ other.words[i]
			out.card += bits.OnesCount64(out.words[i])
		}
		return shrink(out)
	case *arrayContainer:
		out := b.clone().(*bitmapContainer)
		for _, v := range other.values {
			out.unset(v)
		}
		return shrink(out)
	default:
		return b.andNot(asBitmap(o))
	}
}

func (b *bitmapContainer) xor(o container) container {
	switch other := o.(type) {
	case *bitmapContainer:
		out := newBitmapContainer()
		for i := range out.words {
			out.words[i] = b.words[i] ^ other.words[i]
			out.card += bits.OnesCount64(out.words[i])
		}
		return shrink(out)
	case *arrayContainer:
		out := b.clone().(*bitmapContainer)
		for _, v := range other.values {
			out.flip(v)
		}
		return shrink(out)
	default:
		return b.xor(asBitmap(o))
	}
}

func (b *bitmapContainer) runOptimize() container {
	runs := b.countRuns()
	// A run container costs 4 bytes per run + 2; a bitmap container costs
	// 8 KiB. Prefer runs only when clearly smaller.
	if 4*runs+2 < 8*bitmapWords {
		return runsFromContainer(b, runs)
	}
	return b
}

// countRuns returns the number of maximal runs of consecutive set bits.
func (b *bitmapContainer) countRuns() int {
	n := 0
	var prevEndsHigh bool
	for _, word := range b.words {
		// Runs starting within this word: bits set whose previous bit is
		// clear; account for a run continuing from the previous word.
		starts := word &^ (word << 1)
		if prevEndsHigh && word&1 == 1 {
			starts &^= 1
		}
		n += bits.OnesCount64(starts)
		prevEndsHigh = word>>63 == 1
	}
	return n
}
