package bitmap

import (
	"math/rand"
	"sort"
	"testing"
)

// randomBitmap builds a bitmap whose representation exercises all three
// container types: sparse arrays, dense bitsets, and (after RunOptimize)
// run containers.
func randomBitmap(rng *rand.Rand) *Bitmap {
	b := New()
	switch rng.Intn(3) {
	case 0: // sparse array chunks
		n := rng.Intn(200)
		for i := 0; i < n; i++ {
			b.Add(rng.Uint32() % (3 << 16))
		}
	case 1: // a dense chunk that converts to a bitset
		base := uint32(rng.Intn(2)) << 16
		n := arrayMaxSize + rng.Intn(4096)
		for i := 0; i < n; i++ {
			b.Add(base | uint32(rng.Intn(1<<16)))
		}
	default: // contiguous runs
		base := uint32(rng.Intn(2)) << 16
		start := uint32(rng.Intn(1 << 15))
		for v := start; v < start+uint32(rng.Intn(500))+1; v++ {
			b.Add(base | v)
		}
		b.RunOptimize()
	}
	return b
}

func TestCounterMatchesIterate(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		c := NewCounter()
		want := make(map[uint32]int)
		nBitmaps := 1 + rng.Intn(8)
		for i := 0; i < nBitmaps; i++ {
			b := randomBitmap(rng)
			c.Add(b)
			b.Iterate(func(v uint32) bool {
				want[v]++
				return true
			})
		}
		cands := c.Candidates()
		if len(cands) != len(want) {
			t.Fatalf("trial %d: %d candidates, want %d", trial, len(cands), len(want))
		}
		seen := make(map[uint32]bool, len(cands))
		for _, v := range cands {
			if seen[v] {
				t.Fatalf("trial %d: candidate %d listed twice", trial, v)
			}
			seen[v] = true
			if got := c.Count(v); got != want[v] {
				t.Fatalf("trial %d: Count(%d) = %d, want %d", trial, v, got, want[v])
			}
		}
		if got := c.Count(0xdeadbeef); got != want[0xdeadbeef] {
			t.Fatalf("trial %d: absent value count = %d, want %d", trial, got, want[0xdeadbeef])
		}
		// Reset and reuse: the recycled counter must count from scratch.
		c.Reset()
		if len(c.Candidates()) != 0 {
			t.Fatalf("trial %d: candidates survive Reset", trial)
		}
		b := randomBitmap(rng)
		c.Add(b)
		b.Iterate(func(v uint32) bool {
			if c.Count(v) != 1 {
				t.Fatalf("trial %d: post-Reset count of %d = %d, want 1", trial, v, c.Count(v))
			}
			return true
		})
	}
}

func TestCounterAddN(t *testing.T) {
	c := NewCounter()
	c.AddN(70000, 3)
	c.AddN(70000, 2)
	c.AddN(5, 1)
	c.AddN(6, 0)
	c.AddN(7, -2)
	if got := c.Count(70000); got != 5 {
		t.Fatalf("Count(70000) = %d, want 5", got)
	}
	if got := c.Count(5); got != 1 {
		t.Fatalf("Count(5) = %d, want 1", got)
	}
	if got := len(c.Candidates()); got != 2 {
		t.Fatalf("%d candidates, want 2", got)
	}
}

func TestOrInPlaceMatchesOr(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		a, b := randomBitmap(rng), randomBitmap(rng)
		want := Or(a, b)
		bBefore := b.ToSlice()
		a.OrInPlace(b)
		if !a.Equals(want) {
			t.Fatalf("trial %d: OrInPlace differs from Or", trial)
		}
		got := b.ToSlice()
		if len(got) != len(bBefore) {
			t.Fatalf("trial %d: OrInPlace mutated its operand", trial)
		}
		for i := range got {
			if got[i] != bBefore[i] {
				t.Fatalf("trial %d: OrInPlace mutated its operand", trial)
			}
		}
		// The receiver must stay independently mutable.
		a.Add(12345)
		if !a.Contains(12345) {
			t.Fatalf("trial %d: receiver not mutable after OrInPlace", trial)
		}
	}
	// Empty-operand edges.
	e := New()
	e.OrInPlace(New())
	if !e.IsEmpty() {
		t.Fatal("empty OrInPlace empty should stay empty")
	}
	f := FromSlice([]uint32{1, 2, 3})
	e.OrInPlace(f)
	if !e.Equals(f) {
		t.Fatal("empty receiver should copy the operand")
	}
	f.OrInPlace(New())
	if f.Cardinality() != 3 {
		t.Fatal("empty operand should be a no-op")
	}
}

func TestIteratorNextMany(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		b := randomBitmap(rng)
		want := b.ToSlice()
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for _, bufSize := range []int{1, 3, 64, 100000} {
			it := b.Iterator()
			buf := make([]uint32, bufSize)
			var got []uint32
			for {
				n := it.NextMany(buf)
				if n == 0 {
					break
				}
				got = append(got, buf[:n]...)
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d buf %d: %d values, want %d", trial, bufSize, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d buf %d: value %d = %d, want %d", trial, bufSize, i, got[i], want[i])
				}
			}
		}
	}
	// Exhausted and zero-value iterators return 0.
	var zero Iterator
	if zero.NextMany(make([]uint32, 4)) != 0 {
		t.Fatal("zero iterator should be exhausted")
	}
}
