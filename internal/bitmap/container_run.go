package bitmap

import "sort"

// interval is an inclusive run [start, start+length] of consecutive values.
// length is the run length minus one, so a single value has length 0 and a
// full chunk is {0, 65535}.
type interval struct {
	start  uint16
	length uint16
}

func (iv interval) last() uint16 { return iv.start + iv.length }

// runContainer stores a chunk as sorted, non-adjacent runs. Run containers
// are produced by runOptimize on contiguous data (e.g. postings of dense
// fingerprint ranges); mutating or combining them first converts to one of
// the other representations, keeping the operation matrix small.
type runContainer struct {
	runs []interval
}

var _ container = (*runContainer)(nil)

// runsFromSorted builds a run container from a sorted slice, reporting
// false when the slice is empty.
func runsFromSorted(values []uint16) (*runContainer, bool) {
	if len(values) == 0 {
		return nil, false
	}
	r := &runContainer{}
	start, prev := values[0], values[0]
	for _, v := range values[1:] {
		if v == prev+1 {
			prev = v
			continue
		}
		r.runs = append(r.runs, interval{start: start, length: prev - start})
		start, prev = v, v
	}
	r.runs = append(r.runs, interval{start: start, length: prev - start})
	return r, true
}

// runsFromContainer converts any container into a run container with the
// given (pre-counted) number of runs.
func runsFromContainer(c container, runs int) *runContainer {
	r := &runContainer{runs: make([]interval, 0, runs)}
	first := true
	var start, prev uint16
	c.iterate(func(v uint16) bool {
		switch {
		case first:
			start, prev, first = v, v, false
		case v == prev+1:
			prev = v
		default:
			r.runs = append(r.runs, interval{start: start, length: prev - start})
			start, prev = v, v
		}
		return true
	})
	if !first {
		r.runs = append(r.runs, interval{start: start, length: prev - start})
	}
	return r
}

func (r *runContainer) sizeInBytes() int { return 4*len(r.runs) + 2 }

func (r *runContainer) contains(v uint16) bool {
	i := sort.Search(len(r.runs), func(i int) bool { return r.runs[i].start > v })
	if i == 0 {
		return false
	}
	return v <= r.runs[i-1].last()
}

func (r *runContainer) cardinality() int {
	n := 0
	for _, iv := range r.runs {
		n += int(iv.length) + 1
	}
	return n
}

func (r *runContainer) iterate(f func(uint16) bool) bool {
	for _, iv := range r.runs {
		v := int(iv.start)
		for ; v <= int(iv.last()); v++ {
			if !f(uint16(v)) {
				return false
			}
		}
	}
	return true
}

func (r *runContainer) clone() container {
	return &runContainer{runs: append([]interval(nil), r.runs...)}
}

// expand converts the run container to whichever flat representation fits
// its cardinality, prior to a mutating or binary operation.
func (r *runContainer) expand() container {
	if r.cardinality() <= arrayMaxSize {
		return asArray(r)
	}
	return asBitmap(r)
}

func (r *runContainer) add(v uint16) container    { return r.expand().add(v) }
func (r *runContainer) remove(v uint16) container { return r.expand().remove(v) }

func (r *runContainer) and(o container) container    { return r.expand().and(o) }
func (r *runContainer) or(o container) container     { return r.expand().or(o) }
func (r *runContainer) andNot(o container) container { return r.expand().andNot(o) }
func (r *runContainer) xor(o container) container    { return r.expand().xor(o) }

func (r *runContainer) andCardinality(o container) int {
	if other, ok := o.(*runContainer); ok {
		return r.andCardinalityRuns(other)
	}
	n := 0
	r.iterate(func(v uint16) bool {
		if o.contains(v) {
			n++
		}
		return true
	})
	return n
}

// andCardinalityRuns intersects two run lists directly.
func (r *runContainer) andCardinalityRuns(o *runContainer) int {
	n, i, j := 0, 0, 0
	for i < len(r.runs) && j < len(o.runs) {
		a, b := r.runs[i], o.runs[j]
		lo := max(int(a.start), int(b.start))
		hi := min(int(a.last()), int(b.last()))
		if hi >= lo {
			n += hi - lo + 1
		}
		if int(a.last()) < int(b.last()) {
			i++
		} else {
			j++
		}
	}
	return n
}

//geodabs:noalloc
func (r *runContainer) countInto(base uint32, counts []uint16, cands []uint32) []uint32 {
	for _, iv := range r.runs {
		for v := int(iv.start); v <= int(iv.last()); v++ {
			if counts[v] == 0 {
				cands = append(cands, base|uint32(v))
			}
			counts[v]++
		}
	}
	return cands
}

// fillMany: state packs the run index in the high 16 bits and the offset
// within the run in the low 16.
func (r *runContainer) fillMany(base uint32, state uint32, buf []uint32) (int, uint32, bool) {
	ri, off := int(state>>16), int(state&0xffff)
	n := 0
	for ; ri < len(r.runs); ri++ {
		iv := r.runs[ri]
		for v := int(iv.start) + off; v <= int(iv.last()); v++ {
			if n == len(buf) {
				return n, uint32(ri)<<16 | uint32(v-int(iv.start)), false
			}
			buf[n] = base | uint32(v)
			n++
		}
		off = 0
	}
	return n, 0, true
}

func (r *runContainer) runOptimize() container { return r }
