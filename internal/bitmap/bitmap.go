// Package bitmap implements roaring bitmaps (Lemire et al.,
// arXiv:1709.07821): compressed sets of uint32 values partitioned into
// 64 Ki-value chunks by their high 16 bits, with each chunk stored as a
// sorted array, a bitset, or run-length intervals depending on density.
//
// The paper stores every trajectory's fingerprint set as a roaring bitmap
// so that the Jaccard coefficient between a query and a candidate reduces
// to cheap bitwise intersections (§IV-A). JaccardDistance below is exactly
// the δ used to rank retrieval results.
//
// Beyond the classic set algebra (And, Or, AndCardinality, …) the package
// provides the primitives of the index's term-at-a-time counting merge:
// Counter accumulates per-value occurrence counts across a stream of
// bitmaps in one container pass each (counter.go), OrInPlace unions
// without materializing a third bitmap, and Iterator.NextMany decodes
// values in caller-buffered batches with no per-value callback. Together
// they let a ranked search touch each posting list exactly once and run
// allocation-free in steady state.
package bitmap

import "sort"

// Bitmap is a compressed set of uint32 values. The zero value is an empty
// set ready for use. Bitmap is not safe for concurrent mutation; concurrent
// readers are safe once the bitmap is no longer being modified.
type Bitmap struct {
	keys       []uint16 // sorted high-16-bit chunk keys
	containers []container
}

// New returns an empty bitmap.
func New() *Bitmap { return &Bitmap{} }

// FromSlice returns a bitmap containing the given values.
func FromSlice(values []uint32) *Bitmap {
	b := New()
	b.AddMany(values)
	return b
}

func highLow(v uint32) (uint16, uint16) { return uint16(v >> 16), uint16(v) }

// chunkIndex returns the position of key among the bitmap's chunks and
// whether it is present.
func (b *Bitmap) chunkIndex(key uint16) (int, bool) {
	i := sort.Search(len(b.keys), func(i int) bool { return b.keys[i] >= key })
	return i, i < len(b.keys) && b.keys[i] == key
}

// Add inserts v into the set.
func (b *Bitmap) Add(v uint32) {
	key, low := highLow(v)
	i, ok := b.chunkIndex(key)
	if ok {
		b.containers[i] = b.containers[i].add(low)
		return
	}
	b.keys = append(b.keys, 0)
	copy(b.keys[i+1:], b.keys[i:])
	b.keys[i] = key
	b.containers = append(b.containers, nil)
	copy(b.containers[i+1:], b.containers[i:])
	b.containers[i] = &arrayContainer{values: []uint16{low}}
}

// AddMany inserts all values; it is equivalent to calling Add repeatedly.
func (b *Bitmap) AddMany(values []uint32) {
	for _, v := range values {
		b.Add(v)
	}
}

// Remove deletes v from the set if present.
func (b *Bitmap) Remove(v uint32) {
	key, low := highLow(v)
	i, ok := b.chunkIndex(key)
	if !ok {
		return
	}
	c := b.containers[i].remove(low)
	if c.cardinality() == 0 {
		b.keys = append(b.keys[:i], b.keys[i+1:]...)
		b.containers = append(b.containers[:i], b.containers[i+1:]...)
		return
	}
	b.containers[i] = c
}

// Contains reports whether v is in the set.
func (b *Bitmap) Contains(v uint32) bool {
	key, low := highLow(v)
	if i, ok := b.chunkIndex(key); ok {
		return b.containers[i].contains(low)
	}
	return false
}

// Cardinality returns the number of values in the set.
func (b *Bitmap) Cardinality() int {
	n := 0
	for _, c := range b.containers {
		n += c.cardinality()
	}
	return n
}

// IsEmpty reports whether the set has no values.
func (b *Bitmap) IsEmpty() bool { return len(b.keys) == 0 }

// Clear removes all values.
func (b *Bitmap) Clear() {
	b.keys = nil
	b.containers = nil
}

// Clone returns a deep copy of the bitmap.
func (b *Bitmap) Clone() *Bitmap {
	out := &Bitmap{
		keys:       append([]uint16(nil), b.keys...),
		containers: make([]container, len(b.containers)),
	}
	for i, c := range b.containers {
		out.containers[i] = c.clone()
	}
	return out
}

// Iterate calls f on each value in ascending order until f returns false.
func (b *Bitmap) Iterate(f func(uint32) bool) {
	for i, key := range b.keys {
		base := uint32(key) << 16
		if !b.containers[i].iterate(func(low uint16) bool {
			return f(base | uint32(low))
		}) {
			return
		}
	}
}

// Iterator is a buffered many-at-a-time cursor over a bitmap. Unlike
// Iterate it has no per-value callback: NextMany decodes values in batches
// into a caller-owned buffer, which keeps hot loops (term streaming in the
// counting search core) free of both closure dispatch and allocation. The
// zero value is exhausted; obtain one with Bitmap.Iterator. The bitmap
// must not be mutated while an Iterator is live.
type Iterator struct {
	b     *Bitmap
	chunk int    // index of the current chunk
	state uint32 // container-specific resume state
}

// Iterator returns a cursor positioned before the bitmap's first value.
func (b *Bitmap) Iterator() Iterator { return Iterator{b: b} }

// NextMany fills buf with the next values in ascending order and returns
// how many it wrote. It returns 0 when the iterator is exhausted (and only
// then, for non-empty buf).
func (it *Iterator) NextMany(buf []uint32) int {
	if it.b == nil || len(buf) == 0 {
		return 0
	}
	total := 0
	for it.chunk < len(it.b.keys) && total < len(buf) {
		base := uint32(it.b.keys[it.chunk]) << 16
		n, next, done := it.b.containers[it.chunk].fillMany(base, it.state, buf[total:])
		total += n
		if done {
			it.chunk++
			it.state = 0
		} else {
			it.state = next
		}
	}
	return total
}

// ToSlice returns all values in ascending order.
func (b *Bitmap) ToSlice() []uint32 {
	out := make([]uint32, b.Cardinality())
	it := b.Iterator()
	for n := 0; n < len(out); {
		m := it.NextMany(out[n:])
		if m == 0 {
			return out[:n]
		}
		n += m
	}
	return out
}

// Equals reports whether the two bitmaps contain the same values.
func (b *Bitmap) Equals(o *Bitmap) bool {
	if len(b.keys) != len(o.keys) {
		return false
	}
	for i, key := range b.keys {
		if key != o.keys[i] {
			return false
		}
		bc, oc := b.containers[i], o.containers[i]
		if bc.cardinality() != oc.cardinality() {
			return false
		}
		equal := true
		bc.iterate(func(v uint16) bool {
			if !oc.contains(v) {
				equal = false
				return false
			}
			return true
		})
		if !equal {
			return false
		}
	}
	return true
}

// binaryOp merges two bitmaps chunk-by-chunk. onlyA/onlyB control whether
// chunks present in a single operand survive (clone) or are dropped; both
// combines chunks present in both operands.
func binaryOp(a, b *Bitmap, onlyA, onlyB bool, both func(container, container) container) *Bitmap {
	out := New()
	i, j := 0, 0
	appendChunk := func(key uint16, c container) {
		if c != nil && c.cardinality() > 0 {
			out.keys = append(out.keys, key)
			out.containers = append(out.containers, c)
		}
	}
	for i < len(a.keys) && j < len(b.keys) {
		switch {
		case a.keys[i] < b.keys[j]:
			if onlyA {
				appendChunk(a.keys[i], a.containers[i].clone())
			}
			i++
		case a.keys[i] > b.keys[j]:
			if onlyB {
				appendChunk(b.keys[j], b.containers[j].clone())
			}
			j++
		default:
			appendChunk(a.keys[i], both(a.containers[i], b.containers[j]))
			i++
			j++
		}
	}
	if onlyA {
		for ; i < len(a.keys); i++ {
			appendChunk(a.keys[i], a.containers[i].clone())
		}
	}
	if onlyB {
		for ; j < len(b.keys); j++ {
			appendChunk(b.keys[j], b.containers[j].clone())
		}
	}
	return out
}

// OrInPlace adds every value of o to b without materializing a third
// bitmap: chunks present in both operands are merged with the receiver's
// container replaced, chunks only in o are cloned in, chunks only in b are
// kept as-is. o is not modified. This is the allocation-lean union for
// accumulation loops, which would otherwise clone every surviving chunk of
// the accumulator per operand (the cost of the binary Or).
func (b *Bitmap) OrInPlace(o *Bitmap) {
	if o.IsEmpty() {
		return
	}
	// Fast path: every chunk of o already exists in b — merge in place with
	// no slice reshuffling at all.
	fresh := 0
	i, j := 0, 0
	for j < len(o.keys) {
		switch {
		case i < len(b.keys) && b.keys[i] < o.keys[j]:
			i++
		case i < len(b.keys) && b.keys[i] == o.keys[j]:
			i++
			j++
		default:
			fresh++
			j++
		}
	}
	if fresh == 0 {
		i = 0
		for j = 0; j < len(o.keys); j++ {
			for b.keys[i] != o.keys[j] {
				i++
			}
			b.containers[i] = b.containers[i].or(o.containers[j])
		}
		return
	}
	keys := make([]uint16, 0, len(b.keys)+fresh)
	containers := make([]container, 0, len(b.keys)+fresh)
	i, j = 0, 0
	for i < len(b.keys) && j < len(o.keys) {
		switch {
		case b.keys[i] < o.keys[j]:
			keys = append(keys, b.keys[i])
			containers = append(containers, b.containers[i])
			i++
		case b.keys[i] > o.keys[j]:
			keys = append(keys, o.keys[j])
			containers = append(containers, o.containers[j].clone())
			j++
		default:
			keys = append(keys, b.keys[i])
			containers = append(containers, b.containers[i].or(o.containers[j]))
			i++
			j++
		}
	}
	keys = append(keys, b.keys[i:]...)
	containers = append(containers, b.containers[i:]...)
	for ; j < len(o.keys); j++ {
		keys = append(keys, o.keys[j])
		containers = append(containers, o.containers[j].clone())
	}
	b.keys, b.containers = keys, containers
}

// And returns the intersection of a and b as a new bitmap.
func And(a, b *Bitmap) *Bitmap {
	return binaryOp(a, b, false, false, container.and)
}

// Or returns the union of a and b as a new bitmap.
func Or(a, b *Bitmap) *Bitmap {
	return binaryOp(a, b, true, true, container.or)
}

// AndNot returns the difference a − b as a new bitmap.
func AndNot(a, b *Bitmap) *Bitmap {
	return binaryOp(a, b, true, false, container.andNot)
}

// Xor returns the symmetric difference of a and b as a new bitmap.
func Xor(a, b *Bitmap) *Bitmap {
	return binaryOp(a, b, true, true, container.xor)
}

// AndCardinality returns |a ∩ b| without materializing the intersection.
// This is the hot operation when ranking retrieval candidates.
func AndCardinality(a, b *Bitmap) int {
	n, i, j := 0, 0, 0
	for i < len(a.keys) && j < len(b.keys) {
		switch {
		case a.keys[i] < b.keys[j]:
			i++
		case a.keys[i] > b.keys[j]:
			j++
		default:
			n += a.containers[i].andCardinality(b.containers[j])
			i++
			j++
		}
	}
	return n
}

// OrCardinality returns |a ∪ b| without materializing the union, via
// the inclusion-exclusion identity.
func OrCardinality(a, b *Bitmap) int {
	return a.Cardinality() + b.Cardinality() - AndCardinality(a, b)
}

// Jaccard returns the Jaccard coefficient J(a, b) = |a∩b| / |a∪b|.
// The coefficient of two empty sets is defined as 1 (identical sets).
func Jaccard(a, b *Bitmap) float64 {
	inter := AndCardinality(a, b)
	union := a.Cardinality() + b.Cardinality() - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// JaccardDistance returns dJ(a, b) = 1 − J(a, b), the distance the paper
// uses as δ to rank trajectories (Eq. 1). It obeys the triangle inequality.
func JaccardDistance(a, b *Bitmap) float64 {
	return 1 - Jaccard(a, b)
}

// RunOptimize converts chunks to their most compact representation. Call it
// after a bitmap stops being modified (e.g. when a posting list is sealed).
func (b *Bitmap) RunOptimize() {
	for i, c := range b.containers {
		b.containers[i] = c.runOptimize()
	}
}

// SizeInBytes returns an estimate of the in-memory footprint of the bitmap
// payload, used by index statistics.
func (b *Bitmap) SizeInBytes() int {
	n := 2 * len(b.keys)
	for _, c := range b.containers {
		switch c := c.(type) {
		case *arrayContainer:
			n += 2 * len(c.values)
		case *bitmapContainer:
			n += 8 * bitmapWords
		case *runContainer:
			n += c.sizeInBytes()
		}
	}
	return n
}
