package bitmap

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestAddContainsRemove(t *testing.T) {
	b := New()
	if !b.IsEmpty() {
		t.Fatal("new bitmap should be empty")
	}
	values := []uint32{0, 1, 65535, 65536, 1 << 20, 0xffffffff, 42}
	for _, v := range values {
		b.Add(v)
	}
	b.Add(42) // duplicate
	if got := b.Cardinality(); got != len(values) {
		t.Fatalf("Cardinality = %d, want %d", got, len(values))
	}
	for _, v := range values {
		if !b.Contains(v) {
			t.Errorf("missing %d", v)
		}
	}
	for _, v := range []uint32{2, 65537, 1<<20 + 1} {
		if b.Contains(v) {
			t.Errorf("unexpected %d", v)
		}
	}
	b.Remove(65536)
	b.Remove(65536) // double remove is a no-op
	if b.Contains(65536) {
		t.Error("65536 should be gone")
	}
	if got := b.Cardinality(); got != len(values)-1 {
		t.Errorf("Cardinality after remove = %d", got)
	}
	b.Clear()
	if !b.IsEmpty() || b.Cardinality() != 0 {
		t.Error("Clear should empty the bitmap")
	}
}

func TestToSliceSorted(t *testing.T) {
	b := FromSlice([]uint32{5, 1, 99999, 3, 70000, 1})
	got := b.ToSlice()
	want := []uint32{1, 3, 5, 70000, 99999}
	if len(got) != len(want) {
		t.Fatalf("ToSlice = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ToSlice = %v, want %v", got, want)
		}
	}
}

func TestIterateEarlyStop(t *testing.T) {
	b := FromSlice([]uint32{1, 2, 3, 100000, 100001})
	var seen []uint32
	b.Iterate(func(v uint32) bool {
		seen = append(seen, v)
		return len(seen) < 2
	})
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Errorf("early stop saw %v", seen)
	}
}

func TestArrayToBitmapConversion(t *testing.T) {
	b := New()
	// Fill one chunk beyond arrayMaxSize to force conversion.
	for i := 0; i <= arrayMaxSize; i++ {
		b.Add(uint32(i * 3)) // stride keeps everything in chunk 0 (≤ 49152)
	}
	if _, ok := b.containers[0].(*bitmapContainer); !ok {
		t.Fatalf("container should have converted to bitmap, is %T", b.containers[0])
	}
	if got := b.Cardinality(); got != arrayMaxSize+1 {
		t.Fatalf("Cardinality = %d", got)
	}
	for i := 0; i <= arrayMaxSize; i++ {
		if !b.Contains(uint32(i * 3)) {
			t.Fatalf("missing %d after conversion", i*3)
		}
	}
	// Removing below the threshold converts back to an array.
	for i := 0; i <= arrayMaxSize/2; i++ {
		b.Remove(uint32(i * 3))
	}
	if _, ok := b.containers[0].(*arrayContainer); !ok {
		t.Fatalf("container should have shrunk to array, is %T", b.containers[0])
	}
}

func TestChunkRemovalOnEmpty(t *testing.T) {
	b := FromSlice([]uint32{1, 70000})
	b.Remove(70000)
	if len(b.keys) != 1 {
		t.Fatalf("empty chunk should be dropped, have %d chunks", len(b.keys))
	}
	if !b.Contains(1) || b.Contains(70000) {
		t.Error("wrong contents after chunk removal")
	}
}

// refSet is the reference implementation the property tests compare
// against.
type refSet map[uint32]bool

func (r refSet) slice() []uint32 {
	out := make([]uint32, 0, len(r))
	for v := range r {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// randomSets builds a bitmap/reference pair with values drawn from a
// distribution that exercises all three container types: dense runs,
// mid-density chunks and sparse outliers.
func randomSets(rng *rand.Rand, n int) (*Bitmap, refSet) {
	b, ref := New(), refSet{}
	add := func(v uint32) {
		b.Add(v)
		ref[v] = true
	}
	for i := 0; i < n; i++ {
		switch rng.Intn(3) {
		case 0: // dense run in chunk 0
			add(uint32(rng.Intn(9000)))
		case 1: // mid-density chunk 1
			add(65536 + uint32(rng.Intn(30000)))
		default: // sparse high values
			add(rng.Uint32())
		}
	}
	return b, ref
}

func TestPropertyOpsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 25; round++ {
		a, refA := randomSets(rng, 3000)
		b, refB := randomSets(rng, 3000)

		checkEqual(t, "And", And(a, b), func(v uint32) bool { return refA[v] && refB[v] }, refA, refB)
		checkEqual(t, "Or", Or(a, b), func(v uint32) bool { return refA[v] || refB[v] }, refA, refB)
		checkEqual(t, "AndNot", AndNot(a, b), func(v uint32) bool { return refA[v] && !refB[v] }, refA, refB)
		checkEqual(t, "Xor", Xor(a, b), func(v uint32) bool { return refA[v] != refB[v] }, refA, refB)

		wantInter := 0
		for v := range refA {
			if refB[v] {
				wantInter++
			}
		}
		if got := AndCardinality(a, b); got != wantInter {
			t.Fatalf("AndCardinality = %d, want %d", got, wantInter)
		}
		wantUnion := len(refA) + len(refB) - wantInter
		if got := OrCardinality(a, b); got != wantUnion {
			t.Fatalf("OrCardinality = %d, want %d", got, wantUnion)
		}
		if got, want := And(a, b).Cardinality(), wantInter; got != want {
			t.Fatalf("And().Cardinality = %d, want %d", got, want)
		}
	}
}

// checkEqual verifies that got contains exactly the values of the union of
// the references that satisfy pred.
func checkEqual(t *testing.T, op string, got *Bitmap, pred func(uint32) bool, refs ...refSet) {
	t.Helper()
	want := refSet{}
	for _, ref := range refs {
		for v := range ref {
			if pred(v) {
				want[v] = true
			}
		}
	}
	if got.Cardinality() != len(want) {
		t.Fatalf("%s: cardinality %d, want %d", op, got.Cardinality(), len(want))
	}
	ok := true
	got.Iterate(func(v uint32) bool {
		if !want[v] {
			ok = false
			return false
		}
		return true
	})
	if !ok {
		t.Fatalf("%s: contains values outside reference", op)
	}
}

func TestPropertyAddRemoveMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b, ref := New(), refSet{}
	for i := 0; i < 30000; i++ {
		v := uint32(rng.Intn(200000))
		if rng.Intn(3) == 0 {
			b.Remove(v)
			delete(ref, v)
		} else {
			b.Add(v)
			ref[v] = true
		}
	}
	if b.Cardinality() != len(ref) {
		t.Fatalf("cardinality %d, want %d", b.Cardinality(), len(ref))
	}
	for _, v := range ref.slice() {
		if !b.Contains(v) {
			t.Fatalf("missing %d", v)
		}
	}
	got := b.ToSlice()
	want := ref.slice()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order mismatch at %d: %d vs %d", i, got[i], want[i])
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromSlice([]uint32{1, 2, 3, 100000})
	c := a.Clone()
	c.Add(4)
	c.Remove(1)
	if !a.Contains(1) || a.Contains(4) {
		t.Error("mutating clone affected original")
	}
	if !c.Contains(4) || c.Contains(1) {
		t.Error("clone mutations lost")
	}
}

func TestEquals(t *testing.T) {
	a := FromSlice([]uint32{1, 2, 70000})
	b := FromSlice([]uint32{1, 2, 70000})
	if !a.Equals(b) {
		t.Error("equal bitmaps reported unequal")
	}
	b.Add(5)
	if a.Equals(b) {
		t.Error("different bitmaps reported equal")
	}
	b.Remove(5)
	b.Remove(70000)
	b.Add(70001)
	if a.Equals(b) {
		t.Error("bitmaps with same cardinality but different values reported equal")
	}
}

func TestJaccard(t *testing.T) {
	a := FromSlice([]uint32{1, 2, 3, 4})
	b := FromSlice([]uint32{3, 4, 5, 6})
	if got := Jaccard(a, b); math.Abs(got-2.0/6.0) > 1e-15 {
		t.Errorf("Jaccard = %v, want 1/3", got)
	}
	if got := JaccardDistance(a, b); math.Abs(got-(1-2.0/6.0)) > 1e-15 {
		t.Errorf("JaccardDistance = %v", got)
	}
	if got := Jaccard(a, a); got != 1 {
		t.Errorf("self Jaccard = %v, want 1", got)
	}
	empty := New()
	if got := Jaccard(empty, empty); got != 1 {
		t.Errorf("empty Jaccard = %v, want 1 by convention", got)
	}
	if got := JaccardDistance(a, empty); got != 1 {
		t.Errorf("distance to empty = %v, want 1", got)
	}
}

// TestJaccardTriangleInequality checks the metric property (Kosub, 2016)
// that lets the paper prune candidates with precomputed distances.
func TestJaccardTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 50; i++ {
		a, _ := randomSets(rng, 500)
		b, _ := randomSets(rng, 500)
		c, _ := randomSets(rng, 500)
		dab, dbc, dac := JaccardDistance(a, b), JaccardDistance(b, c), JaccardDistance(a, c)
		if dac > dab+dbc+1e-12 {
			t.Fatalf("triangle inequality violated: %v > %v + %v", dac, dab, dbc)
		}
	}
}

func TestRunOptimize(t *testing.T) {
	b := New()
	for i := 0; i < 10000; i++ {
		b.Add(uint32(i))
	}
	sizeBefore := b.SizeInBytes()
	b.RunOptimize()
	if _, ok := b.containers[0].(*runContainer); !ok {
		t.Fatalf("contiguous chunk should become a run container, is %T", b.containers[0])
	}
	if b.SizeInBytes() >= sizeBefore {
		t.Errorf("run optimization did not shrink: %d → %d bytes", sizeBefore, b.SizeInBytes())
	}
	if b.Cardinality() != 10000 {
		t.Fatalf("cardinality changed by optimization: %d", b.Cardinality())
	}
	for _, v := range []uint32{0, 9999, 5000} {
		if !b.Contains(v) {
			t.Errorf("missing %d after optimization", v)
		}
	}
	if b.Contains(10000) {
		t.Error("contains value never added")
	}
	// Ops on run containers still work (via expansion or direct runs).
	other := FromSlice([]uint32{5000, 5001, 20000})
	if got := AndCardinality(b, other); got != 2 {
		t.Errorf("AndCardinality with run container = %d, want 2", got)
	}
	other.RunOptimize()
	if got := AndCardinality(b, other); got != 2 {
		t.Errorf("AndCardinality run∩run = %d, want 2", got)
	}
	b.Add(20000) // mutating a run container converts it back
	if !b.Contains(20000) || b.Cardinality() != 10001 {
		t.Error("add after RunOptimize failed")
	}
}

func TestRunOptimizeSparseStaysArray(t *testing.T) {
	b := FromSlice([]uint32{1, 100, 5000, 40000})
	b.RunOptimize()
	if _, ok := b.containers[0].(*arrayContainer); !ok {
		t.Errorf("sparse chunk should stay an array, is %T", b.containers[0])
	}
}

func TestCountRuns(t *testing.T) {
	tests := []struct {
		name   string
		values []uint32
		want   int
	}{
		{"empty", nil, 0},
		{"single", []uint32{5}, 1},
		{"one-run", []uint32{5, 6, 7}, 1},
		{"two-runs", []uint32{5, 6, 8}, 2},
		{"word-boundary", []uint32{63, 64}, 1},
		{"word-boundary-split", []uint32{63, 65}, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			bc := newBitmapContainer()
			for _, v := range tt.values {
				bc.set(uint16(v))
			}
			if got := bc.countRuns(); got != tt.want {
				t.Errorf("countRuns = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestBitmapEdgeValues(t *testing.T) {
	b := New()
	edges := []uint32{0, 63, 64, 65535, 65536, 0xfffffffe, 0xffffffff}
	for _, v := range edges {
		b.Add(v)
	}
	for _, v := range edges {
		if !b.Contains(v) {
			t.Errorf("missing edge value %d", v)
		}
	}
	got := b.ToSlice()
	if len(got) != len(edges) {
		t.Fatalf("ToSlice length %d, want %d", len(got), len(edges))
	}
}
