package bitmap

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"
)

// Serialization format (little endian):
//
//	magic   uint32  "GDBM" (0x4d424447)
//	version uint8   1
//	chunks  uint32
//	per chunk:
//	  key   uint16
//	  kind  uint8   1=array 2=bitmap 3=run
//	  array:  count uint32, count × uint16
//	  bitmap: card  uint32, 1024 × uint64
//	  run:    runs  uint32, runs × (start uint16, length uint16)
const (
	magic         = 0x4d424447
	formatVersion = 1
)

const (
	kindArray  = 1
	kindBitmap = 2
	kindRun    = 3
)

// WriteTo serializes the bitmap. It implements io.WriterTo.
func (b *Bitmap) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &countingWriter{w: bw}
	writeErr := func(err error) (int64, error) {
		return cw.n, fmt.Errorf("bitmap: write: %w", err)
	}
	if err := binary.Write(cw, binary.LittleEndian, uint32(magic)); err != nil {
		return writeErr(err)
	}
	if err := binary.Write(cw, binary.LittleEndian, uint8(formatVersion)); err != nil {
		return writeErr(err)
	}
	if err := binary.Write(cw, binary.LittleEndian, uint32(len(b.keys))); err != nil {
		return writeErr(err)
	}
	for i, key := range b.keys {
		if err := binary.Write(cw, binary.LittleEndian, key); err != nil {
			return writeErr(err)
		}
		if err := writeContainer(cw, b.containers[i]); err != nil {
			return writeErr(err)
		}
	}
	if err := bw.Flush(); err != nil {
		return writeErr(err)
	}
	return cw.n, nil
}

func writeContainer(w io.Writer, c container) error {
	switch c := c.(type) {
	case *arrayContainer:
		if err := binary.Write(w, binary.LittleEndian, uint8(kindArray)); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(len(c.values))); err != nil {
			return err
		}
		return binary.Write(w, binary.LittleEndian, c.values)
	case *bitmapContainer:
		if err := binary.Write(w, binary.LittleEndian, uint8(kindBitmap)); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(c.card)); err != nil {
			return err
		}
		return binary.Write(w, binary.LittleEndian, c.words[:])
	case *runContainer:
		if err := binary.Write(w, binary.LittleEndian, uint8(kindRun)); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(len(c.runs))); err != nil {
			return err
		}
		for _, iv := range c.runs {
			if err := binary.Write(w, binary.LittleEndian, iv.start); err != nil {
				return err
			}
			if err := binary.Write(w, binary.LittleEndian, iv.length); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown container type %T", c)
	}
}

// ReadFrom deserializes a bitmap previously written with WriteTo,
// replacing the receiver's contents. It implements io.ReaderFrom.
func (b *Bitmap) ReadFrom(r io.Reader) (int64, error) {
	cr := &countingReader{r: bufio.NewReader(r)}
	readErr := func(err error) (int64, error) {
		return cr.n, fmt.Errorf("bitmap: read: %w", err)
	}
	var m uint32
	if err := binary.Read(cr, binary.LittleEndian, &m); err != nil {
		return readErr(err)
	}
	if m != magic {
		return cr.n, fmt.Errorf("bitmap: bad magic %#x", m)
	}
	var version uint8
	if err := binary.Read(cr, binary.LittleEndian, &version); err != nil {
		return readErr(err)
	}
	if version != formatVersion {
		return cr.n, fmt.Errorf("bitmap: unsupported version %d", version)
	}
	var chunks uint32
	if err := binary.Read(cr, binary.LittleEndian, &chunks); err != nil {
		return readErr(err)
	}
	b.Clear()
	b.keys = make([]uint16, 0, chunks)
	b.containers = make([]container, 0, chunks)
	var prevKey int = -1
	for i := uint32(0); i < chunks; i++ {
		var key uint16
		if err := binary.Read(cr, binary.LittleEndian, &key); err != nil {
			return readErr(err)
		}
		if int(key) <= prevKey {
			return cr.n, fmt.Errorf("bitmap: chunk keys out of order (%d after %d)", key, prevKey)
		}
		prevKey = int(key)
		c, err := readContainer(cr)
		if err != nil {
			return readErr(err)
		}
		b.keys = append(b.keys, key)
		b.containers = append(b.containers, c)
	}
	return cr.n, nil
}

func readContainer(r io.Reader) (container, error) {
	var kind uint8
	if err := binary.Read(r, binary.LittleEndian, &kind); err != nil {
		return nil, err
	}
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	switch kind {
	case kindArray:
		if n > 1<<16 {
			return nil, fmt.Errorf("array container too large: %d", n)
		}
		a := &arrayContainer{values: make([]uint16, n)}
		if err := binary.Read(r, binary.LittleEndian, a.values); err != nil {
			return nil, err
		}
		for i := 1; i < len(a.values); i++ {
			if a.values[i] <= a.values[i-1] {
				return nil, fmt.Errorf("array container values out of order")
			}
		}
		return a, nil
	case kindBitmap:
		bc := newBitmapContainer()
		if err := binary.Read(r, binary.LittleEndian, bc.words[:]); err != nil {
			return nil, err
		}
		bc.card = int(n)
		if got := recount(bc); got != bc.card {
			return nil, fmt.Errorf("bitmap container cardinality mismatch: header %d, actual %d", bc.card, got)
		}
		return bc, nil
	case kindRun:
		if n > 1<<15 {
			return nil, fmt.Errorf("run container too large: %d runs", n)
		}
		rc := &runContainer{runs: make([]interval, n)}
		for i := range rc.runs {
			if err := binary.Read(r, binary.LittleEndian, &rc.runs[i].start); err != nil {
				return nil, err
			}
			if err := binary.Read(r, binary.LittleEndian, &rc.runs[i].length); err != nil {
				return nil, err
			}
			if i > 0 && rc.runs[i].start <= rc.runs[i-1].last() {
				return nil, fmt.Errorf("run container intervals overlap")
			}
		}
		return rc, nil
	default:
		return nil, fmt.Errorf("unknown container kind %d", kind)
	}
}

func recount(b *bitmapContainer) int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

type countingReader struct {
	r io.Reader
	n int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	return n, err
}
