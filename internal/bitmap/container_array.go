package bitmap

import "sort"

// arrayContainer stores values as a sorted slice of uint16. It is the
// representation of choice for sparse chunks (≤ arrayMaxSize values).
type arrayContainer struct {
	values []uint16
}

var _ container = (*arrayContainer)(nil)

// search returns the position of v in the slice and whether it is present.
func (a *arrayContainer) search(v uint16) (int, bool) {
	i := sort.Search(len(a.values), func(i int) bool { return a.values[i] >= v })
	return i, i < len(a.values) && a.values[i] == v
}

func (a *arrayContainer) contains(v uint16) bool {
	_, ok := a.search(v)
	return ok
}

func (a *arrayContainer) cardinality() int { return len(a.values) }

func (a *arrayContainer) add(v uint16) container {
	i, ok := a.search(v)
	if ok {
		return a
	}
	if len(a.values) >= arrayMaxSize {
		b := asBitmap(a)
		b.set(v)
		return b
	}
	a.values = append(a.values, 0)
	copy(a.values[i+1:], a.values[i:])
	a.values[i] = v
	return a
}

func (a *arrayContainer) remove(v uint16) container {
	if i, ok := a.search(v); ok {
		a.values = append(a.values[:i], a.values[i+1:]...)
	}
	return a
}

func (a *arrayContainer) iterate(f func(uint16) bool) bool {
	for _, v := range a.values {
		if !f(v) {
			return false
		}
	}
	return true
}

//geodabs:noalloc
func (a *arrayContainer) countInto(base uint32, counts []uint16, cands []uint32) []uint32 {
	for _, v := range a.values {
		if counts[v] == 0 {
			cands = append(cands, base|uint32(v))
		}
		counts[v]++
	}
	return cands
}

// fillMany: state is the index of the next unconsumed value.
func (a *arrayContainer) fillMany(base uint32, state uint32, buf []uint32) (int, uint32, bool) {
	i := int(state)
	n := 0
	for ; i < len(a.values) && n < len(buf); i++ {
		buf[n] = base | uint32(a.values[i])
		n++
	}
	return n, uint32(i), i >= len(a.values)
}

func (a *arrayContainer) clone() container {
	return &arrayContainer{values: append([]uint16(nil), a.values...)}
}

func (a *arrayContainer) and(o container) container {
	switch other := o.(type) {
	case *arrayContainer:
		return &arrayContainer{values: intersectSorted(a.values, other.values)}
	default:
		out := &arrayContainer{values: make([]uint16, 0, min(len(a.values), o.cardinality()))}
		for _, v := range a.values {
			if o.contains(v) {
				out.values = append(out.values, v)
			}
		}
		return out
	}
}

func (a *arrayContainer) andCardinality(o container) int {
	switch other := o.(type) {
	case *arrayContainer:
		return countIntersectSorted(a.values, other.values)
	default:
		n := 0
		for _, v := range a.values {
			if o.contains(v) {
				n++
			}
		}
		return n
	}
}

func (a *arrayContainer) or(o container) container {
	switch other := o.(type) {
	case *arrayContainer:
		merged := unionSorted(a.values, other.values)
		if len(merged) > arrayMaxSize {
			return asBitmap(&arrayContainer{values: merged})
		}
		return &arrayContainer{values: merged}
	default:
		b := asBitmap(o).clone().(*bitmapContainer)
		for _, v := range a.values {
			b.set(v)
		}
		return shrink(b)
	}
}

func (a *arrayContainer) andNot(o container) container {
	out := &arrayContainer{values: make([]uint16, 0, len(a.values))}
	for _, v := range a.values {
		if !o.contains(v) {
			out.values = append(out.values, v)
		}
	}
	return out
}

func (a *arrayContainer) xor(o container) container {
	switch other := o.(type) {
	case *arrayContainer:
		sym := symmetricDiffSorted(a.values, other.values)
		if len(sym) > arrayMaxSize {
			return asBitmap(&arrayContainer{values: sym})
		}
		return &arrayContainer{values: sym}
	default:
		b := asBitmap(o).clone().(*bitmapContainer)
		for _, v := range a.values {
			b.flip(v)
		}
		return shrink(b)
	}
}

func (a *arrayContainer) runOptimize() container {
	if r, ok := runsFromSorted(a.values); ok && r.sizeInBytes() < 2*len(a.values) {
		return r
	}
	return a
}

// intersectSorted returns the intersection of two sorted uint16 slices.
func intersectSorted(a, b []uint16) []uint16 {
	out := make([]uint16, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// countIntersectSorted returns the size of the intersection without
// materializing it.
func countIntersectSorted(a, b []uint16) int {
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// unionSorted returns the union of two sorted uint16 slices.
func unionSorted(a, b []uint16) []uint16 {
	out := make([]uint16, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// symmetricDiffSorted returns the symmetric difference of two sorted
// slices.
func symmetricDiffSorted(a, b []uint16) []uint16 {
	out := make([]uint16, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
