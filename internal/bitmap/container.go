package bitmap

// container is a set of uint16 values, one per high-16-bit key of the
// bitmap. Implementations convert between one another as their cardinality
// crosses arrayMaxSize, mirroring the design of Lemire et al.'s roaring
// bitmaps: sorted arrays for sparse chunks, 64-kilobit bitsets for dense
// chunks, and run-length encoding for contiguous chunks.
//
// Mutating methods return the container to use afterwards, which may be a
// converted copy of the receiver.
type container interface {
	add(v uint16) container
	remove(v uint16) container
	contains(v uint16) bool
	cardinality() int

	and(o container) container
	or(o container) container
	andNot(o container) container
	xor(o container) container
	andCardinality(o container) int

	// iterate calls f for each value in ascending order until f returns
	// false; it reports whether iteration ran to completion.
	iterate(f func(uint16) bool) bool

	// countInto bumps counts[v] for every value v in the container. A value
	// whose count transitions 0→1 is appended (as base|v) to cands, whose
	// updated slice is returned — this is the term-at-a-time counting merge
	// primitive: accumulating a posting list into a per-query counter takes
	// one pass over the container with no per-value callback and no
	// intermediate bitmap.
	countInto(base uint32, counts []uint16, cands []uint32) []uint32

	// fillMany appends the container's values ≥ state (offset by base) to
	// buf until buf is full or the container is exhausted, returning the
	// new buf length, the resume state for the next call, and whether the
	// container is exhausted. It backs the bitmap's buffered many-at-a-time
	// iterator.
	fillMany(base uint32, state uint32, buf []uint32) (n int, next uint32, done bool)

	// runOptimize returns the most compact representation of the container.
	runOptimize() container

	clone() container
}

// arrayMaxSize is the cardinality above which an array container is
// converted to a bitmap container (and below which a bitmap container is
// converted back). 4096 uint16s occupy 8 KiB, the size of a bitmap
// container, so this is the break-even point.
const arrayMaxSize = 4096

// asBitmap converts any container into a bitmap container.
func asBitmap(c container) *bitmapContainer {
	if b, ok := c.(*bitmapContainer); ok {
		return b
	}
	b := newBitmapContainer()
	c.iterate(func(v uint16) bool {
		b.set(v)
		return true
	})
	return b
}

// asArray converts any container into an array container. The caller must
// ensure the cardinality fits.
func asArray(c container) *arrayContainer {
	if a, ok := c.(*arrayContainer); ok {
		return a
	}
	a := &arrayContainer{values: make([]uint16, 0, c.cardinality())}
	c.iterate(func(v uint16) bool {
		a.values = append(a.values, v)
		return true
	})
	return a
}

// shrink converts c to an array container when it is small enough for one.
func shrink(c container) container {
	if _, ok := c.(*arrayContainer); ok {
		return c
	}
	if c.cardinality() <= arrayMaxSize {
		return asArray(c)
	}
	return c
}
