package bitmap

// Counter accumulates per-value occurrence counts across a stream of
// bitmaps — the term-at-a-time counting merge at the heart of ranked
// retrieval: feeding every posting list of a query's terms through Add
// leaves, for each candidate trajectory, the shared-term count |F ∩ G|,
// with no candidate-union bitmap and no per-candidate intersection.
//
// Counts are chunked like the bitmaps themselves: a 65536-entry uint16
// count array per high-16-bit chunk, allocated lazily on first touch and
// recycled across Reset calls, plus a direct-index chunk table so the
// per-container accumulation path has no map lookups. Values seen for the
// first time are recorded in a candidate list, so enumerating the result
// costs O(|candidates|), not a scan of the count arrays.
//
// Counts are 16-bit and wrap past 65535 Adds of one value; callers stream
// at most that many bitmaps between Resets (ranked retrieval is bounded by
// the query's term count, which the index core checks before choosing this
// path). A Counter is not safe for concurrent use. The zero value is not
// usable; construct with NewCounter and reuse via Reset — a steady-state
// Add/Reset cycle performs no allocations.
type Counter struct {
	slot   []int32 // 65536 entries: chunk key → index into chunks, -1 absent
	keys   []uint16
	chunks [][]uint16 // parallel to keys; each 65536 counts
	free   [][]uint16 // zeroed chunk arrays recycled by Reset
	cands  []uint32   // values with count ≥ 1, in first-touch order
}

// NewCounter returns an empty counter ready for Add.
func NewCounter() *Counter {
	c := &Counter{slot: make([]int32, 1<<16)}
	for i := range c.slot {
		c.slot[i] = -1
	}
	return c
}

// chunkFor returns the count array of the chunk with the given key,
// creating it on first touch.
//
//geodabs:noalloc
func (c *Counter) chunkFor(key uint16) []uint16 {
	if i := c.slot[key]; i >= 0 {
		return c.chunks[i]
	}
	var counts []uint16
	if n := len(c.free); n > 0 {
		counts = c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
	} else {
		counts = make([]uint16, 1<<16) //geodabs:vet-ignore first-touch chunk allocation, recycled across Reset via the free list
	}
	c.slot[key] = int32(len(c.chunks))
	c.keys = append(c.keys, key)
	c.chunks = append(c.chunks, counts)
	return counts
}

// Add bumps the count of every value in b by one.
//
//geodabs:noalloc
func (c *Counter) Add(b *Bitmap) {
	for i, key := range b.keys {
		c.cands = b.containers[i].countInto(uint32(key)<<16, c.chunkFor(key), c.cands)
	}
}

// AddN bumps the count of a single value by n (no-op for n ≤ 0). The
// cluster coordinator uses it to sum the partial counts returned by shard
// nodes, whose term spaces are disjoint.
func (c *Counter) AddN(v uint32, n int) {
	if n <= 0 {
		return
	}
	counts := c.chunkFor(uint16(v >> 16))
	if counts[uint16(v)] == 0 {
		c.cands = append(c.cands, v)
	}
	counts[uint16(v)] += uint16(n)
}

// Count returns the accumulated count of v, 0 when never seen.
func (c *Counter) Count(v uint32) int {
	if i := c.slot[uint16(v>>16)]; i >= 0 {
		return int(c.chunks[i][uint16(v)])
	}
	return 0
}

// Candidates returns the values counted at least once, in first-touch
// order. The slice is owned by the counter and valid until Reset.
func (c *Counter) Candidates() []uint32 { return c.cands }

// Reset clears the counter for reuse, keeping the touched chunk arrays
// for recycling. Sparse accumulations (the common retrieval case) zero
// exactly the slots the candidate list names; dense ones fall back to
// clearing whole chunks, which is cheaper past a few thousand touches.
func (c *Counter) Reset() {
	if len(c.cands) < 4096*len(c.chunks) {
		for _, v := range c.cands {
			c.chunks[c.slot[uint16(v>>16)]][uint16(v)] = 0
		}
	} else {
		for i := range c.chunks {
			clear(c.chunks[i])
		}
	}
	for i, key := range c.keys {
		c.slot[key] = -1
		c.free = append(c.free, c.chunks[i])
		c.chunks[i] = nil
	}
	c.keys = c.keys[:0]
	c.chunks = c.chunks[:0]
	c.cands = c.cands[:0]
}
