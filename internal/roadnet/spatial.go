package roadnet

import (
	"math"
	"sort"

	"geodabs/internal/geo"
)

// nodeGrid is a uniform spatial hash of node positions used for
// nearest-node and radius queries. Cells are square in local meters.
type nodeGrid struct {
	cellMeters float64
	origin     geo.Point
	cosLat     float64
	cells      map[[2]int32][]NodeID
	keyMin     [2]int32
	keyMax     [2]int32
}

// Freeze builds the spatial index with the given cell size in meters.
// It must be called after the graph is fully constructed and before
// NearestNode or NodesWithin. Mutating the graph invalidates the index.
func (g *Graph) Freeze(cellMeters float64) {
	if cellMeters <= 0 {
		cellMeters = 250
	}
	grid := &nodeGrid{
		cellMeters: cellMeters,
		cells:      make(map[[2]int32][]NodeID, len(g.points)/2+1),
	}
	if len(g.points) > 0 {
		b := g.Bounds()
		grid.origin = geo.Point{Lat: b.MinLat, Lon: b.MinLon}
		grid.cosLat = math.Cos(b.Center().Lat * math.Pi / 180)
		if grid.cosLat < 1e-6 {
			grid.cosLat = 1e-6
		}
	}
	for i, p := range g.points {
		key := grid.key(p)
		if i == 0 {
			grid.keyMin, grid.keyMax = key, key
		} else {
			grid.keyMin[0] = min(grid.keyMin[0], key[0])
			grid.keyMin[1] = min(grid.keyMin[1], key[1])
			grid.keyMax[0] = max(grid.keyMax[0], key[0])
			grid.keyMax[1] = max(grid.keyMax[1], key[1])
		}
		grid.cells[key] = append(grid.cells[key], NodeID(i))
	}
	g.grid = grid
}

// local projects a point to meters relative to the grid origin.
func (ng *nodeGrid) local(p geo.Point) (x, y float64) {
	const mPerDeg = 2 * math.Pi * geo.EarthRadius / 360
	x = (p.Lon - ng.origin.Lon) * mPerDeg * ng.cosLat
	y = (p.Lat - ng.origin.Lat) * mPerDeg
	return x, y
}

func (ng *nodeGrid) key(p geo.Point) [2]int32 {
	x, y := ng.local(p)
	return [2]int32{int32(math.Floor(x / ng.cellMeters)), int32(math.Floor(y / ng.cellMeters))}
}

// NearestNode returns the node closest to p and its ground distance in
// meters. It requires Freeze. Searching an empty graph returns (-1, +Inf).
func (g *Graph) NearestNode(p geo.Point) (NodeID, float64) {
	if g.grid == nil {
		panic("roadnet: NearestNode before Freeze")
	}
	if len(g.points) == 0 {
		return -1, math.Inf(1)
	}
	ng := g.grid
	center := ng.key(p)
	// No ring beyond the grid's key extent can contain a node.
	ringMax := maxAbs(center[0]-ng.keyMin[0], center[1]-ng.keyMin[1])
	ringMax = max(ringMax, maxAbs(center[0]-ng.keyMax[0], center[1]-ng.keyMax[1]))
	best := NodeID(-1)
	bestDist := math.Inf(1)
	// Expand square rings of cells until a hit is found and the next ring
	// cannot contain anything closer.
	for ring := int32(0); ring <= ringMax; ring++ {
		if best >= 0 && float64(ring-1)*ng.cellMeters > bestDist {
			break
		}
		for dx := -ring; dx <= ring; dx++ {
			for dy := -ring; dy <= ring; dy++ {
				if maxAbs(dx, dy) != ring { // ring boundary only
					continue
				}
				for _, id := range ng.cells[[2]int32{center[0] + dx, center[1] + dy}] {
					if d := geo.Haversine(p, g.points[id]); d < bestDist {
						best, bestDist = id, d
					}
				}
			}
		}
	}
	return best, bestDist
}

// NodesWithin returns the nodes within radius meters of p, ordered by
// increasing distance. It requires Freeze.
func (g *Graph) NodesWithin(p geo.Point, radius float64) []NodeID {
	if g.grid == nil {
		panic("roadnet: NodesWithin before Freeze")
	}
	ng := g.grid
	center := ng.key(p)
	span := int32(math.Ceil(radius/ng.cellMeters)) + 1
	type hit struct {
		id NodeID
		d  float64
	}
	var hits []hit
	for dx := -span; dx <= span; dx++ {
		for dy := -span; dy <= span; dy++ {
			for _, id := range ng.cells[[2]int32{center[0] + dx, center[1] + dy}] {
				if d := geo.Haversine(p, g.points[id]); d <= radius {
					hits = append(hits, hit{id: id, d: d})
				}
			}
		}
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].d < hits[j].d })
	out := make([]NodeID, len(hits))
	for i, h := range hits {
		out[i] = h.id
	}
	return out
}

func maxAbs(a, b int32) int32 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	if a > b {
		return a
	}
	return b
}
