package roadnet

import (
	"math"
	"math/rand"
	"testing"

	"geodabs/internal/geo"
)

// lineGraph builds a path graph of n nodes spaced 100 m apart heading
// east, all edges at 10 m/s.
func lineGraph(n int) *Graph {
	g := &Graph{}
	for i := 0; i < n; i++ {
		g.AddNode(geo.Offset(LondonCenter, 0, float64(i)*100))
	}
	for i := 0; i < n-1; i++ {
		if err := g.AddEdge(NodeID(i), NodeID(i+1), 10); err != nil {
			panic(err)
		}
	}
	return g
}

func TestAddEdgeValidation(t *testing.T) {
	g := &Graph{}
	a := g.AddNode(LondonCenter)
	b := g.AddNode(geo.Offset(LondonCenter, 100, 0))
	tests := []struct {
		name    string
		from    NodeID
		to      NodeID
		speed   float64
		wantErr bool
	}{
		{"ok", a, b, 10, false},
		{"self-loop", a, a, 10, true},
		{"unknown-node", a, 99, 10, true},
		{"negative-node", -1, b, 10, true},
		{"zero-speed", a, b, 0, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := g.AddEdge(tt.from, tt.to, tt.speed)
			if (err != nil) != tt.wantErr {
				t.Errorf("AddEdge error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", g.NumEdges())
	}
	// Undirected: both adjacency lists see the edge.
	if len(g.Neighbors(a)) != 1 || len(g.Neighbors(b)) != 1 {
		t.Error("edge should appear in both adjacency lists")
	}
	if got := g.Neighbors(a)[0].Length; math.Abs(got-100) > 1 {
		t.Errorf("edge length = %.1f, want ≈100", got)
	}
}

func TestShortestPathLine(t *testing.T) {
	g := lineGraph(10)
	r, err := g.ShortestPath(0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Nodes) != 10 {
		t.Fatalf("route has %d nodes, want 10", len(r.Nodes))
	}
	if math.Abs(r.Length-900) > 2 {
		t.Errorf("Length = %.1f, want ≈900", r.Length)
	}
	if math.Abs(r.Duration-90) > 1 {
		t.Errorf("Duration = %.1f, want ≈90", r.Duration)
	}
	pts := r.Points(g)
	if len(pts) != 10 || pts[0] != g.Point(0) {
		t.Error("Points mapping broken")
	}
}

func TestShortestPathSameNode(t *testing.T) {
	g := lineGraph(3)
	r, err := g.ShortestPath(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Nodes) != 1 || r.Length != 0 || r.Duration != 0 {
		t.Errorf("trivial route = %+v", r)
	}
}

func TestShortestPathDisconnected(t *testing.T) {
	g := lineGraph(3)
	island := g.AddNode(geo.Offset(LondonCenter, 5000, 0))
	if _, err := g.ShortestPath(0, island); err != ErrNoRoute {
		t.Errorf("want ErrNoRoute, got %v", err)
	}
	if _, err := g.ShortestPath(0, 99); err == nil {
		t.Error("unknown node should error")
	}
}

func TestShortestPathPrefersFastRoad(t *testing.T) {
	// Two parallel paths: a short slow street and a longer fast arterial.
	g := &Graph{}
	a := g.AddNode(LondonCenter)
	b := g.AddNode(geo.Offset(LondonCenter, 0, 1000))
	slow := g.AddNode(geo.Offset(LondonCenter, 100, 500))
	fast := g.AddNode(geo.Offset(LondonCenter, -400, 500))
	mustEdge(t, g, a, slow, kmh(20))
	mustEdge(t, g, slow, b, kmh(20))
	mustEdge(t, g, a, fast, kmh(100))
	mustEdge(t, g, fast, b, kmh(100))
	r, err := g.ShortestPath(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r.Nodes[1] != fast {
		t.Errorf("route went through node %d, want the arterial %d", r.Nodes[1], fast)
	}
}

func mustEdge(t *testing.T, g *Graph, a, b NodeID, speed float64) {
	t.Helper()
	if err := g.AddEdge(a, b, speed); err != nil {
		t.Fatal(err)
	}
}

func TestAStarMatchesDijkstra(t *testing.T) {
	city, err := GenerateCity(CityConfig{RadiusMeters: 2000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 30; i++ {
		from := NodeID(rng.Intn(city.NumNodes()))
		to := NodeID(rng.Intn(city.NumNodes()))
		d, errD := city.ShortestPath(from, to)
		a, errA := city.AStar(from, to)
		if (errD == nil) != (errA == nil) {
			t.Fatalf("error mismatch: dijkstra %v, astar %v", errD, errA)
		}
		if errD != nil {
			continue
		}
		if math.Abs(d.Duration-a.Duration) > 1e-6 {
			t.Fatalf("duration mismatch: dijkstra %.3f, astar %.3f", d.Duration, a.Duration)
		}
	}
}

func TestDistancesWithin(t *testing.T) {
	g := lineGraph(10)
	dist := g.DistancesWithin(0, 350)
	// Nodes 0..3 are within 350 m along the line.
	for id := NodeID(0); id <= 3; id++ {
		want := float64(id) * 100
		if got, ok := dist[id]; !ok || math.Abs(got-want) > 2 {
			t.Errorf("dist[%d] = %v, want ≈%.0f", id, got, want)
		}
	}
	if _, ok := dist[4]; ok {
		t.Error("node 4 is beyond the bound")
	}
}

func TestLargestComponent(t *testing.T) {
	g := lineGraph(5)
	// An island pair.
	i1 := g.AddNode(geo.Offset(LondonCenter, 10000, 0))
	i2 := g.AddNode(geo.Offset(LondonCenter, 10100, 0))
	mustEdge(t, g, i1, i2, 10)
	lc := g.LargestComponent()
	if lc.NumNodes() != 5 {
		t.Fatalf("largest component has %d nodes, want 5", lc.NumNodes())
	}
	if lc.NumEdges() != 4 {
		t.Fatalf("largest component has %d edges, want 4", lc.NumEdges())
	}
	if _, err := lc.ShortestPath(0, 4); err != nil {
		t.Errorf("component should be connected: %v", err)
	}
}

func TestNearestNode(t *testing.T) {
	g := lineGraph(10)
	g.Freeze(250)
	query := geo.Offset(LondonCenter, 30, 420) // closest to node 4 (400 m east)
	id, d := g.NearestNode(query)
	if id != 4 {
		t.Errorf("NearestNode = %d, want 4", id)
	}
	if d > 50 {
		t.Errorf("distance = %.1f, want < 50", d)
	}
	// A far query still resolves (ring expansion).
	far := geo.Offset(LondonCenter, 20000, 20000)
	if id, _ := g.NearestNode(far); id != 9 {
		t.Errorf("far NearestNode = %d, want 9", id)
	}
}

func TestNearestNodePanicsWithoutFreeze(t *testing.T) {
	g := lineGraph(3)
	defer func() {
		if recover() == nil {
			t.Error("want panic before Freeze")
		}
	}()
	g.NearestNode(LondonCenter)
}

func TestNodesWithin(t *testing.T) {
	g := lineGraph(10)
	g.Freeze(250)
	got := g.NodesWithin(LondonCenter, 250)
	// Nodes 0, 1, 2 lie within 250 m.
	if len(got) != 3 {
		t.Fatalf("NodesWithin = %v, want 3 nodes", got)
	}
	// Ordered by distance.
	if got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Errorf("NodesWithin order = %v", got)
	}
	if empty := g.NodesWithin(geo.Offset(LondonCenter, 50000, 0), 100); len(empty) != 0 {
		t.Errorf("far query returned %v", empty)
	}
}

func TestGenerateCityProperties(t *testing.T) {
	cfg := CityConfig{RadiusMeters: 3000, Seed: 42}
	g, err := GenerateCity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() < 500 {
		t.Fatalf("city too small: %d nodes", g.NumNodes())
	}
	// Every node is inside the disk (with jitter slack).
	for i := 0; i < g.NumNodes(); i++ {
		if d := geo.Haversine(LondonCenter, g.Point(NodeID(i))); d > 3000+200 {
			t.Fatalf("node %d is %.0f m from center", i, d)
		}
	}
	// Connected by construction.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		from := NodeID(rng.Intn(g.NumNodes()))
		to := NodeID(rng.Intn(g.NumNodes()))
		if _, err := g.ShortestPath(from, to); err != nil {
			t.Fatalf("city not connected: %v", err)
		}
	}
	// Determinism: same seed, same city.
	g2, err := GenerateCity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Errorf("same seed produced different city: %d/%d vs %d/%d nodes/edges",
			g.NumNodes(), g.NumEdges(), g2.NumNodes(), g2.NumEdges())
	}
	// Different seed, different city.
	g3, err := GenerateCity(CityConfig{RadiusMeters: 3000, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if g3.NumEdges() == g.NumEdges() {
		t.Log("different seeds produced same edge count (possible but unlikely)")
	}
}

func TestGenerateCityValidation(t *testing.T) {
	if _, err := GenerateCity(CityConfig{RadiusMeters: 50, BlockMeters: 200}); err == nil {
		t.Error("radius smaller than a block should fail")
	}
	if _, err := GenerateCity(CityConfig{RemoveFraction: 0.9}); err == nil {
		t.Error("remove fraction 0.9 should fail")
	}
	if _, err := GenerateCity(CityConfig{BlockMeters: 5, RadiusMeters: 100}); err == nil {
		t.Error("tiny blocks should fail")
	}
}

func TestRandomRoute(t *testing.T) {
	g, err := GenerateCity(CityConfig{RadiusMeters: 3000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10; i++ {
		r, err := RandomRoute(g, 2000, rng)
		if err != nil {
			t.Fatal(err)
		}
		if r.Length < 2000 {
			t.Errorf("route length %.0f below minimum", r.Length)
		}
		if r.Duration <= 0 {
			t.Errorf("route duration %.1f", r.Duration)
		}
	}
	if _, err := RandomRoute(g, 1e9, rng); err == nil {
		t.Error("impossible minimum length should fail")
	}
	if _, err := RandomRoute(&Graph{}, 10, rng); err == nil {
		t.Error("empty graph should fail")
	}
}

func TestWorldSampler(t *testing.T) {
	ws := NewWorldSampler(0, 1)
	pts := ws.SampleN(20000)
	if len(pts) != 20000 {
		t.Fatalf("SampleN returned %d points", len(pts))
	}
	// Most samples lie near some city; background samples spread farther
	// but stay within a few σ of the background spread.
	cities := WorldCities()
	counts := make(map[string]int)
	nearby := 0
	for _, p := range pts {
		bestName, bestD := "", math.Inf(1)
		for _, c := range cities {
			if d := geo.Haversine(p, c.Center); d < bestD {
				bestName, bestD = c.Name, d
			}
		}
		if bestD > 6*400_000 {
			t.Fatalf("sample %v is %f km from any city", p, bestD/1000)
		}
		if bestD <= 360_000 {
			nearby++
		}
		counts[bestName]++
	}
	// ≈70% of samples are metropolitan (σ = 60 km) plus the share of the
	// background that stays regional.
	if frac := float64(nearby) / float64(len(pts)); frac < 0.75 {
		t.Errorf("only %.0f%% of samples are near a city", frac*100)
	}
	// The heaviest city receives the most samples (allowing nearby-city
	// bleed): Mexico City should be at or near the top.
	if counts["Mexico City"] < counts["Berlin"] {
		t.Errorf("Mexico City (%d) should outweigh Berlin (%d)", counts["Mexico City"], counts["Berlin"])
	}
	// Determinism by seed.
	ws2 := NewWorldSampler(0, 1)
	if ws2.Sample() != NewWorldSampler(0, 1).Sample() {
		t.Error("same seed should reproduce samples")
	}
}

func TestWorldCitiesSorted(t *testing.T) {
	cities := WorldCities()
	if len(cities) < 60 {
		t.Fatalf("only %d cities embedded", len(cities))
	}
	for i := 1; i < len(cities); i++ {
		if cities[i].Weight > cities[i-1].Weight {
			t.Fatalf("cities not sorted by weight at %d", i)
		}
	}
	if cities[0].Name != "Mexico City" {
		t.Errorf("heaviest city = %s, want Mexico City (paper Fig 15)", cities[0].Name)
	}
	for _, c := range cities {
		if !c.Center.Valid() {
			t.Errorf("%s has invalid coordinates %v", c.Name, c.Center)
		}
	}
}

func BenchmarkAStarCityRoute(b *testing.B) {
	g, err := GenerateCity(CityConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = RandomRoute(g, 3000, rng)
	}
}
