package roadnet

import (
	"math/rand"
	"sort"

	"geodabs/internal/geo"
)

// City is a metropolitan area of the synthetic world model with a
// population-like sampling weight in millions of inhabitants.
//
// The paper's Figures 15 and 16 measure how trajectories recorded across
// the whole planet distribute over depth-16 geohash cells and over index
// shards. We replace the full OpenStreetMap dump with this model: the
// world's trajectory mass concentrates in metropolitan areas whose weights
// follow the real population distribution (heavy tail, Mexico City at the
// top as in the paper's Fig 15), and oceans stay empty.
type City struct {
	Name   string
	Center geo.Point
	Weight float64
}

// WorldCities returns the embedded metropolitan areas, heaviest first.
func WorldCities() []City {
	cities := []City{
		{"Mexico City", geo.Point{Lat: 19.43, Lon: -99.13}, 38}, // inflated: the paper's tallest peak
		{"Tokyo", geo.Point{Lat: 35.68, Lon: 139.69}, 37},
		{"Delhi", geo.Point{Lat: 28.61, Lon: 77.21}, 29},
		{"Shanghai", geo.Point{Lat: 31.23, Lon: 121.47}, 27},
		{"São Paulo", geo.Point{Lat: -23.55, Lon: -46.63}, 22},
		{"Dhaka", geo.Point{Lat: 23.81, Lon: 90.41}, 21},
		{"Cairo", geo.Point{Lat: 30.04, Lon: 31.24}, 21},
		{"Beijing", geo.Point{Lat: 39.90, Lon: 116.41}, 20},
		{"Mumbai", geo.Point{Lat: 19.08, Lon: 72.88}, 20},
		{"Osaka", geo.Point{Lat: 34.69, Lon: 135.50}, 19},
		{"Karachi", geo.Point{Lat: 24.86, Lon: 67.01}, 16},
		{"Chongqing", geo.Point{Lat: 29.43, Lon: 106.91}, 16},
		{"Istanbul", geo.Point{Lat: 41.01, Lon: 28.98}, 15},
		{"Buenos Aires", geo.Point{Lat: -34.60, Lon: -58.38}, 15},
		{"Kolkata", geo.Point{Lat: 22.57, Lon: 88.36}, 15},
		{"Lagos", geo.Point{Lat: 6.52, Lon: 3.38}, 15},
		{"Kinshasa", geo.Point{Lat: -4.44, Lon: 15.27}, 15},
		{"Manila", geo.Point{Lat: 14.60, Lon: 120.98}, 14},
		{"Tianjin", geo.Point{Lat: 39.34, Lon: 117.36}, 14},
		{"Guangzhou", geo.Point{Lat: 23.13, Lon: 113.26}, 13},
		{"Rio de Janeiro", geo.Point{Lat: -22.91, Lon: -43.17}, 13},
		{"Lahore", geo.Point{Lat: 31.55, Lon: 74.34}, 13},
		{"Bangalore", geo.Point{Lat: 12.97, Lon: 77.59}, 13},
		{"Moscow", geo.Point{Lat: 55.76, Lon: 37.62}, 12},
		{"Shenzhen", geo.Point{Lat: 22.54, Lon: 114.06}, 12},
		{"Chennai", geo.Point{Lat: 13.08, Lon: 80.27}, 11},
		{"Bogotá", geo.Point{Lat: 4.71, Lon: -74.07}, 11},
		{"Paris", geo.Point{Lat: 48.86, Lon: 2.35}, 11},
		{"Jakarta", geo.Point{Lat: -6.21, Lon: 106.85}, 11},
		{"Lima", geo.Point{Lat: -12.05, Lon: -77.04}, 11},
		{"Bangkok", geo.Point{Lat: 13.76, Lon: 100.50}, 10},
		{"Seoul", geo.Point{Lat: 37.57, Lon: 126.98}, 10},
		{"Nagoya", geo.Point{Lat: 35.18, Lon: 136.91}, 10},
		{"Hyderabad", geo.Point{Lat: 17.39, Lon: 78.49}, 10},
		{"London", geo.Point{Lat: 51.51, Lon: -0.13}, 9},
		{"Tehran", geo.Point{Lat: 35.69, Lon: 51.39}, 9},
		{"Chicago", geo.Point{Lat: 41.88, Lon: -87.63}, 9},
		{"Chengdu", geo.Point{Lat: 30.57, Lon: 104.07}, 9},
		{"New York", geo.Point{Lat: 40.71, Lon: -74.01}, 19},
		{"Los Angeles", geo.Point{Lat: 34.05, Lon: -118.24}, 12},
		{"Luanda", geo.Point{Lat: -8.84, Lon: 13.23}, 8},
		{"Ho Chi Minh City", geo.Point{Lat: 10.82, Lon: 106.63}, 8},
		{"Kuala Lumpur", geo.Point{Lat: 3.14, Lon: 101.69}, 8},
		{"Xi'an", geo.Point{Lat: 34.34, Lon: 108.94}, 8},
		{"Hong Kong", geo.Point{Lat: 22.32, Lon: 114.17}, 7},
		{"Dongguan", geo.Point{Lat: 23.02, Lon: 113.75}, 7},
		{"Hangzhou", geo.Point{Lat: 30.27, Lon: 120.16}, 7},
		{"Foshan", geo.Point{Lat: 23.02, Lon: 113.12}, 7},
		{"Riyadh", geo.Point{Lat: 24.71, Lon: 46.68}, 7},
		{"Shenyang", geo.Point{Lat: 41.81, Lon: 123.43}, 7},
		{"Baghdad", geo.Point{Lat: 33.31, Lon: 44.37}, 7},
		{"Santiago", geo.Point{Lat: -33.45, Lon: -70.67}, 7},
		{"Surat", geo.Point{Lat: 21.17, Lon: 72.83}, 7},
		{"Madrid", geo.Point{Lat: 40.42, Lon: -3.70}, 6},
		{"Suzhou", geo.Point{Lat: 31.30, Lon: 120.58}, 6},
		{"Pune", geo.Point{Lat: 18.52, Lon: 73.86}, 6},
		{"Harbin", geo.Point{Lat: 45.80, Lon: 126.53}, 6},
		{"Houston", geo.Point{Lat: 29.76, Lon: -95.37}, 6},
		{"Dallas", geo.Point{Lat: 32.78, Lon: -96.80}, 6},
		{"Toronto", geo.Point{Lat: 43.65, Lon: -79.38}, 6},
		{"Dar es Salaam", geo.Point{Lat: -6.79, Lon: 39.21}, 6},
		{"Miami", geo.Point{Lat: 25.76, Lon: -80.19}, 6},
		{"Belo Horizonte", geo.Point{Lat: -19.92, Lon: -43.94}, 6},
		{"Singapore", geo.Point{Lat: 1.35, Lon: 103.82}, 5},
		{"Philadelphia", geo.Point{Lat: 39.95, Lon: -75.17}, 5},
		{"Atlanta", geo.Point{Lat: 33.75, Lon: -84.39}, 5},
		{"Fukuoka", geo.Point{Lat: 33.59, Lon: 130.40}, 5},
		{"Khartoum", geo.Point{Lat: 15.50, Lon: 32.56}, 5},
		{"Barcelona", geo.Point{Lat: 41.39, Lon: 2.17}, 5},
		{"Johannesburg", geo.Point{Lat: -26.20, Lon: 28.05}, 5},
		{"Saint Petersburg", geo.Point{Lat: 59.93, Lon: 30.34}, 5},
		{"Qingdao", geo.Point{Lat: 36.07, Lon: 120.38}, 5},
		{"Sydney", geo.Point{Lat: -33.87, Lon: 151.21}, 5},
		{"Berlin", geo.Point{Lat: 52.52, Lon: 13.41}, 4},
		{"Nairobi", geo.Point{Lat: -1.29, Lon: 36.82}, 4},
		{"Melbourne", geo.Point{Lat: -37.81, Lon: 144.96}, 4},
		{"Rome", geo.Point{Lat: 41.90, Lon: 12.50}, 4},
		{"Casablanca", geo.Point{Lat: 33.57, Lon: -7.59}, 4},
		{"Abidjan", geo.Point{Lat: 5.36, Lon: -4.01}, 4},
		{"Cape Town", geo.Point{Lat: -33.92, Lon: 18.42}, 4},
		{"Accra", geo.Point{Lat: 5.60, Lon: -0.19}, 4},
		{"Ankara", geo.Point{Lat: 39.93, Lon: 32.86}, 4},
		{"Addis Ababa", geo.Point{Lat: 9.03, Lon: 38.74}, 4},
	}
	sort.SliceStable(cities, func(i, j int) bool { return cities[i].Weight > cities[j].Weight })
	return cities
}

// WorldSampler draws trajectory origin points from the synthetic world
// model: a population-weighted mixture of Gaussian metropolitan clusters,
// plus a diffuse regional background standing in for suburban and rural
// road coverage. Oceans and polar voids receive (almost) nothing, giving
// the heavy peaks and empty gaps of the paper's Fig 15.
type WorldSampler struct {
	cities []City
	cum    []float64 // cumulative weights for roulette sampling
	total  float64
	// SpreadMeters is the standard deviation of the per-city Gaussian
	// cluster (how far trajectories spread from the city center).
	SpreadMeters float64
	// BackgroundFraction of samples is drawn with BackgroundSpread
	// instead, modeling the road network between cities.
	BackgroundFraction float64
	BackgroundSpread   float64
	rng                *rand.Rand
}

// NewWorldSampler returns a sampler over the embedded city model.
// spreadMeters ≤ 0 defaults to 40 km, a metropolitan-scale spread; the
// regional background defaults to 25% of samples spread over 400 km.
func NewWorldSampler(spreadMeters float64, seed int64) *WorldSampler {
	if spreadMeters <= 0 {
		spreadMeters = 60_000
	}
	cities := WorldCities()
	cum := make([]float64, len(cities))
	total := 0.0
	for i, c := range cities {
		total += c.Weight
		cum[i] = total
	}
	return &WorldSampler{
		cities:             cities,
		cum:                cum,
		total:              total,
		SpreadMeters:       spreadMeters,
		BackgroundFraction: 0.3,
		BackgroundSpread:   400_000,
		rng:                rand.New(rand.NewSource(seed)),
	}
}

// Sample returns one trajectory origin point.
func (ws *WorldSampler) Sample() geo.Point {
	x := ws.rng.Float64() * ws.total
	i := sort.SearchFloat64s(ws.cum, x)
	if i >= len(ws.cities) {
		i = len(ws.cities) - 1
	}
	c := ws.cities[i]
	spread := ws.SpreadMeters
	if ws.rng.Float64() < ws.BackgroundFraction {
		spread = ws.BackgroundSpread
	}
	return geo.Offset(c.Center,
		ws.rng.NormFloat64()*spread,
		ws.rng.NormFloat64()*spread)
}

// SampleN returns n origin points.
func (ws *WorldSampler) SampleN(n int) []geo.Point {
	out := make([]geo.Point, n)
	for i := range out {
		out[i] = ws.Sample()
	}
	return out
}
