// Package roadnet provides the road-network substrate the paper obtains
// from GraphHopper and OpenStreetMap (§VI-A1): a routable graph with
// travel speeds, shortest-path routing (Dijkstra and A*), a spatial index
// for nearest-node queries, a synthetic city generator standing in for the
// London road network, and a population-weighted world model standing in
// for the full OSM dump.
package roadnet

import (
	"errors"
	"fmt"

	"geodabs/internal/geo"
)

// NodeID identifies a node (junction) in a graph. IDs are dense indexes.
type NodeID int32

// Edge is a directed half-edge of the road graph. Road segments are
// bidirectional: AddEdge stores a half-edge in both adjacency lists.
type Edge struct {
	To     NodeID
	Length float64 // meters
	Speed  float64 // free-flow speed, meters/second
}

// travelTime returns the free-flow traversal time of the edge in seconds.
func (e Edge) travelTime() float64 { return e.Length / e.Speed }

// Graph is an undirected road network. The zero value is an empty graph
// ready for use. Graphs are not safe for concurrent mutation; read-only
// use (routing, nearest-node queries after Freeze) is safe concurrently.
type Graph struct {
	points []geo.Point
	adj    [][]Edge
	edges  int
	grid   *nodeGrid
}

// AddNode adds a junction at p and returns its ID.
func (g *Graph) AddNode(p geo.Point) NodeID {
	g.points = append(g.points, p)
	g.adj = append(g.adj, nil)
	g.grid = nil
	return NodeID(len(g.points) - 1)
}

// AddEdge connects a and b bidirectionally with the given free-flow speed
// in meters/second. The length is the ground distance between the nodes.
// Self-loops and invalid speeds are rejected.
func (g *Graph) AddEdge(a, b NodeID, speed float64) error {
	if a == b {
		return fmt.Errorf("roadnet: self-loop on node %d", a)
	}
	if !g.valid(a) || !g.valid(b) {
		return fmt.Errorf("roadnet: edge (%d, %d) references unknown node", a, b)
	}
	if speed <= 0 {
		return fmt.Errorf("roadnet: non-positive speed %f", speed)
	}
	length := geo.Haversine(g.points[a], g.points[b])
	g.adj[a] = append(g.adj[a], Edge{To: b, Length: length, Speed: speed})
	g.adj[b] = append(g.adj[b], Edge{To: a, Length: length, Speed: speed})
	g.edges++
	return nil
}

func (g *Graph) valid(id NodeID) bool { return id >= 0 && int(id) < len(g.points) }

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.points) }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return g.edges }

// Point returns the position of a node.
func (g *Graph) Point(id NodeID) geo.Point { return g.points[id] }

// Neighbors returns the half-edges leaving id. The slice is owned by the
// graph and must not be modified.
func (g *Graph) Neighbors(id NodeID) []Edge { return g.adj[id] }

// Bounds returns the bounding box of all nodes.
func (g *Graph) Bounds() geo.Box { return geo.NewBox(g.points...) }

// Route is a path through the graph.
type Route struct {
	Nodes    []NodeID
	Length   float64 // meters
	Duration float64 // seconds at free-flow speeds
}

// Points maps the route's nodes to their positions.
func (r *Route) Points(g *Graph) []geo.Point {
	out := make([]geo.Point, len(r.Nodes))
	for i, id := range r.Nodes {
		out[i] = g.Point(id)
	}
	return out
}

// Leg is one segment of a route with its free-flow speed.
type Leg struct {
	From, To geo.Point
	Length   float64 // meters
	Speed    float64 // meters/second
}

// Legs expands the route into segments, recovering each segment's speed
// from the graph. The trajectory generator uses the speeds to time its
// samples, the way the paper derives speeds from GraphHopper's route
// durations.
func (r *Route) Legs(g *Graph) []Leg {
	if len(r.Nodes) < 2 {
		return nil
	}
	legs := make([]Leg, 0, len(r.Nodes)-1)
	for i := 1; i < len(r.Nodes); i++ {
		from, to := r.Nodes[i-1], r.Nodes[i]
		leg := Leg{From: g.Point(from), To: g.Point(to)}
		for _, e := range g.adj[from] {
			if e.To == to {
				leg.Length, leg.Speed = e.Length, e.Speed
				break
			}
		}
		if leg.Speed == 0 {
			// The route does not follow graph edges (hand-built route):
			// fall back to the ground distance at residential speed.
			leg.Length = geo.Haversine(leg.From, leg.To)
			leg.Speed = speedResidentialMin
		}
		legs = append(legs, leg)
	}
	return legs
}

// ReverseLegs returns the legs of the opposite direction of travel.
func ReverseLegs(legs []Leg) []Leg {
	out := make([]Leg, len(legs))
	for i, l := range legs {
		out[len(legs)-1-i] = Leg{From: l.To, To: l.From, Length: l.Length, Speed: l.Speed}
	}
	return out
}

// ErrNoRoute is returned when no path connects the requested endpoints.
var ErrNoRoute = errors.New("roadnet: no route between nodes")

// ShortestPath returns the fastest route (by free-flow travel time) from
// one node to another, using Dijkstra's algorithm. It returns ErrNoRoute
// when the nodes are disconnected.
func (g *Graph) ShortestPath(from, to NodeID) (*Route, error) {
	return g.route(from, to, nil)
}

// AStar returns the same fastest route as ShortestPath but guides the
// search with the great-circle travel-time lower bound, which visits far
// fewer nodes on large graphs.
func (g *Graph) AStar(from, to NodeID) (*Route, error) {
	maxSpeed := 1.0
	for _, edges := range g.adj {
		for _, e := range edges {
			if e.Speed > maxSpeed {
				maxSpeed = e.Speed
			}
		}
	}
	target := g.points[to]
	h := func(id NodeID) float64 {
		return geo.Haversine(g.points[id], target) / maxSpeed
	}
	return g.route(from, to, h)
}

// route runs Dijkstra (h == nil) or A* (h != nil) from from to to.
func (g *Graph) route(from, to NodeID, h func(NodeID) float64) (*Route, error) {
	if !g.valid(from) || !g.valid(to) {
		return nil, fmt.Errorf("roadnet: route references unknown node (%d → %d)", from, to)
	}
	if from == to {
		return &Route{Nodes: []NodeID{from}}, nil
	}
	dist := make(map[NodeID]float64, 1024)
	prev := make(map[NodeID]NodeID, 1024)
	done := make(map[NodeID]bool, 1024)
	pq := &nodeQueue{}
	dist[from] = 0
	push(pq, queueItem{node: from, priority: 0})
	for pq.Len() > 0 {
		item := pop(pq)
		if done[item.node] {
			continue
		}
		if item.node == to {
			break
		}
		done[item.node] = true
		d := dist[item.node]
		for _, e := range g.adj[item.node] {
			if done[e.To] {
				continue
			}
			nd := d + e.travelTime()
			if cur, ok := dist[e.To]; !ok || nd < cur {
				dist[e.To] = nd
				prev[e.To] = item.node
				priority := nd
				if h != nil {
					priority += h(e.To)
				}
				push(pq, queueItem{node: e.To, priority: priority})
			}
		}
	}
	if _, ok := dist[to]; !ok {
		return nil, ErrNoRoute
	}
	return g.assemble(from, to, dist[to], prev), nil
}

// assemble reconstructs the route from the predecessor map.
func (g *Graph) assemble(from, to NodeID, duration float64, prev map[NodeID]NodeID) *Route {
	var nodes []NodeID
	for at := to; ; {
		nodes = append(nodes, at)
		if at == from {
			break
		}
		at = prev[at]
	}
	for i, j := 0, len(nodes)-1; i < j; i, j = i+1, j-1 {
		nodes[i], nodes[j] = nodes[j], nodes[i]
	}
	length := 0.0
	for i := 1; i < len(nodes); i++ {
		length += geo.Haversine(g.points[nodes[i-1]], g.points[nodes[i]])
	}
	return &Route{Nodes: nodes, Length: length, Duration: duration}
}

// DistancesWithin runs a bounded Dijkstra from the source and returns the
// travel distance in meters (not time) to every node reachable within
// maxMeters. The map matcher uses it to score HMM transitions.
func (g *Graph) DistancesWithin(from NodeID, maxMeters float64) map[NodeID]float64 {
	dist := map[NodeID]float64{from: 0}
	done := make(map[NodeID]bool)
	pq := &nodeQueue{}
	push(pq, queueItem{node: from, priority: 0})
	for pq.Len() > 0 {
		item := pop(pq)
		if done[item.node] {
			continue
		}
		done[item.node] = true
		d := dist[item.node]
		for _, e := range g.adj[item.node] {
			nd := d + e.Length
			if nd > maxMeters {
				continue
			}
			if cur, ok := dist[e.To]; !ok || nd < cur {
				dist[e.To] = nd
				push(pq, queueItem{node: e.To, priority: nd})
			}
		}
	}
	return dist
}

// LargestComponent returns a new graph containing only the largest
// connected component, with renumbered nodes. Generators use it to discard
// fragments left by random edge removal.
func (g *Graph) LargestComponent() *Graph {
	seen := make([]bool, len(g.points))
	var best []NodeID
	for start := range g.points {
		if seen[start] {
			continue
		}
		comp := []NodeID{NodeID(start)}
		seen[start] = true
		for i := 0; i < len(comp); i++ {
			for _, e := range g.adj[comp[i]] {
				if !seen[e.To] {
					seen[e.To] = true
					comp = append(comp, e.To)
				}
			}
		}
		if len(comp) > len(best) {
			best = comp
		}
	}
	remap := make(map[NodeID]NodeID, len(best))
	out := &Graph{}
	for _, id := range best {
		remap[id] = out.AddNode(g.points[id])
	}
	for _, id := range best {
		for _, e := range g.adj[id] {
			if e.To > id { // each undirected edge once
				if _, ok := remap[e.To]; ok {
					// Re-adding recomputes length; speeds carry over.
					if err := out.AddEdge(remap[id], remap[e.To], e.Speed); err != nil {
						panic(fmt.Sprintf("roadnet: rebuilding component: %v", err))
					}
				}
			}
		}
	}
	return out
}

// queueItem and nodeQueue implement the priority queue for Dijkstra/A*.
type queueItem struct {
	node     NodeID
	priority float64
}

type nodeQueue []queueItem

func (q nodeQueue) Len() int { return len(q) }

// push and pop implement a binary min-heap inline; container/heap's
// interface indirection costs ~2× on this hot path.
func push(q *nodeQueue, item queueItem) {
	*q = append(*q, item)
	i := len(*q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*q)[parent].priority <= (*q)[i].priority {
			break
		}
		(*q)[parent], (*q)[i] = (*q)[i], (*q)[parent]
		i = parent
	}
}

func pop(q *nodeQueue) queueItem {
	top := (*q)[0]
	last := len(*q) - 1
	(*q)[0] = (*q)[last]
	*q = (*q)[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && (*q)[l].priority < (*q)[smallest].priority {
			smallest = l
		}
		if r < last && (*q)[r].priority < (*q)[smallest].priority {
			smallest = r
		}
		if smallest == i {
			return top
		}
		(*q)[i], (*q)[smallest] = (*q)[smallest], (*q)[i]
		i = smallest
	}
}

// kmh converts km/h to m/s for readable speed constants.
func kmh(v float64) float64 { return v / 3.6 }
