package roadnet

import (
	"fmt"
	"math"
	"math/rand"

	"geodabs/internal/geo"
)

// LondonCenter is the center of the paper's 300 km² evaluation area.
var LondonCenter = geo.Point{Lat: 51.5074, Lon: -0.1278}

// CityConfig parameterizes the synthetic city generator, a substitute for
// the OpenStreetMap extract of London used by the paper. The generated
// network is an irregular grid with arterial rows and columns, positional
// jitter and random gaps — enough structure for routes to overlap heavily,
// which is what makes the paper's dataset "dense".
type CityConfig struct {
	// Center of the city. Defaults to central London.
	Center geo.Point
	// RadiusMeters bounds the street network to a disk. The default
	// 9,772 m yields the paper's ≈300 km² area.
	RadiusMeters float64
	// BlockMeters is the grid spacing between junctions (default 200 m).
	BlockMeters float64
	// JitterMeters perturbs junction positions (default 30 m).
	JitterMeters float64
	// RemoveFraction of non-arterial street segments is deleted to break
	// the grid's regularity (default 0.12).
	RemoveFraction float64
	// ArterialEvery promotes every n-th row and column to a fast arterial
	// (default 8).
	ArterialEvery int
	// Seed drives all randomness; the same seed reproduces the same city.
	Seed int64
}

// withDefaults fills zero fields with the documented defaults.
func (c CityConfig) withDefaults() CityConfig {
	if c.Center == (geo.Point{}) {
		c.Center = LondonCenter
	}
	if c.RadiusMeters == 0 {
		c.RadiusMeters = math.Sqrt(300e6 / math.Pi) // 300 km² disk
	}
	if c.BlockMeters == 0 {
		c.BlockMeters = 200
	}
	if c.JitterMeters == 0 {
		c.JitterMeters = 30
	}
	if c.RemoveFraction == 0 {
		c.RemoveFraction = 0.12
	}
	if c.ArterialEvery == 0 {
		c.ArterialEvery = 8
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c CityConfig) Validate() error {
	c = c.withDefaults()
	switch {
	case c.RadiusMeters < c.BlockMeters:
		return fmt.Errorf("roadnet: radius %.0f m smaller than one block", c.RadiusMeters)
	case c.BlockMeters < 10:
		return fmt.Errorf("roadnet: blocks of %.0f m are too small", c.BlockMeters)
	case c.RemoveFraction < 0 || c.RemoveFraction > 0.5:
		return fmt.Errorf("roadnet: remove fraction %.2f out of [0, 0.5]", c.RemoveFraction)
	default:
		return nil
	}
}

// Street speed classes, in m/s.
var (
	speedResidentialMin = kmh(30)
	speedResidentialMax = kmh(50)
	speedArterial       = kmh(60)
)

// GenerateCity builds a synthetic city road network. The result is
// connected (the largest component of the jittered, thinned grid) and
// frozen with a spatial index sized to the block length.
func GenerateCity(cfg CityConfig) (*Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	half := int(cfg.RadiusMeters / cfg.BlockMeters)
	size := 2*half + 1
	ids := make([]NodeID, size*size)
	for i := range ids {
		ids[i] = -1
	}
	at := func(r, c int) NodeID {
		if r < 0 || r >= size || c < 0 || c >= size {
			return -1
		}
		return ids[r*size+c]
	}

	g := &Graph{}
	for r := 0; r < size; r++ {
		for c := 0; c < size; c++ {
			dn := float64(r-half) * cfg.BlockMeters
			de := float64(c-half) * cfg.BlockMeters
			if math.Hypot(dn, de) > cfg.RadiusMeters {
				continue
			}
			p := geo.Offset(cfg.Center, dn, de)
			p = geo.Offset(p, rng.NormFloat64()*cfg.JitterMeters, rng.NormFloat64()*cfg.JitterMeters)
			ids[r*size+c] = g.AddNode(p)
		}
	}

	arterialRow := func(r int) bool { return r%cfg.ArterialEvery == 0 }
	connect := func(a, b NodeID, arterial bool) {
		if a < 0 || b < 0 {
			return
		}
		speed := speedResidentialMin + rng.Float64()*(speedResidentialMax-speedResidentialMin)
		if arterial {
			speed = speedArterial
		} else if rng.Float64() < cfg.RemoveFraction {
			return // thin the residential grid
		}
		if err := g.AddEdge(a, b, speed); err != nil {
			panic(fmt.Sprintf("roadnet: generating city: %v", err))
		}
	}
	for r := 0; r < size; r++ {
		for c := 0; c < size; c++ {
			connect(at(r, c), at(r, c+1), arterialRow(r))
			connect(at(r, c), at(r+1, c), arterialRow(c))
		}
	}
	// Two diagonal avenues through the center give the network the
	// non-grid shortcuts real cities have.
	for r := 0; r < size-1; r++ {
		connect(at(r, r), at(r+1, r+1), true)
		connect(at(r, size-1-r), at(r+1, size-2-r), true)
	}

	g = g.LargestComponent()
	g.Freeze(cfg.BlockMeters)
	return g, nil
}

// RandomRoute returns the fastest route between two random nodes whose
// length is at least minMeters. It gives up after a bounded number of
// attempts on badly connected graphs.
func RandomRoute(g *Graph, minMeters float64, rng *rand.Rand) (*Route, error) {
	if g.NumNodes() < 2 {
		return nil, fmt.Errorf("roadnet: graph too small for routes")
	}
	const attempts = 64
	for i := 0; i < attempts; i++ {
		from := NodeID(rng.Intn(g.NumNodes()))
		to := NodeID(rng.Intn(g.NumNodes()))
		if from == to {
			continue
		}
		// Cheap pre-check: skip pairs whose straight-line distance is
		// already below the requested route length.
		if geo.Haversine(g.Point(from), g.Point(to)) < minMeters {
			continue
		}
		route, err := g.AStar(from, to)
		if err != nil {
			continue
		}
		if route.Length >= minMeters {
			return route, nil
		}
	}
	return nil, fmt.Errorf("roadnet: no route of at least %.0f m found in %d attempts", minMeters, attempts)
}
