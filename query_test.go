package geodabs_test

import (
	"context"
	"reflect"
	"strings"
	"sync"
	"testing"

	"geodabs"

	"geodabs/internal/bitmap"
)

// preparedVariants builds every way of preparing one trajectory as a
// *Query: lazy (NewQuery), eager (Fingerprinter.Prepare) and
// fingerprint-only (QueryFromFingerprint). The fingerprint-only variant
// reports itself so callers can skip rerank cases against it.
func preparedVariants(t *testing.T, tr *geodabs.Trajectory) map[string]*geodabs.Query {
	t.Helper()
	fp, err := geodabs.NewFingerprinter(geodabs.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*geodabs.Query{
		"NewQuery":             geodabs.NewQuery(tr.Points),
		"Prepare":              fp.Prepare(tr.Points),
		"QueryFromFingerprint": geodabs.QueryFromFingerprint(fp.Fingerprint(tr.Points)),
	}
}

// TestSearchQueryMatchesSearch is the redesign's acceptance gate: for
// every preparation flavor and option combination, SearchQuery(prepared)
// returns byte-identical rankings to Search(trajectory), on both engines
// — and a second call through the now-warm caches agrees again.
func TestSearchQueryMatchesSearch(t *testing.T) {
	_, w := testWorld()
	idx := builtTestIndex(t)
	cl := builtTestCluster(t, 2)
	ctx := context.Background()
	optionSets := map[string][]geodabs.SearchOption{
		"default":      nil,
		"range+limit":  {geodabs.WithMaxDistance(0.99), geodabs.WithLimit(5)},
		"knn":          {geodabs.WithKNN(3)},
		"ranged knn":   {geodabs.WithMaxDistance(0.5), geodabs.WithKNN(5)},
		"exact rerank": {geodabs.WithMaxDistance(0.99), geodabs.WithKNN(5), geodabs.WithExactRerank(geodabs.DTW)},
	}
	for _, tr := range w.Queries {
		variants := preparedVariants(t, tr)
		for optName, opts := range optionSets {
			want, err := idx.Search(ctx, tr, opts...)
			if err != nil {
				t.Fatal(err)
			}
			clWant, err := cl.Search(ctx, tr, opts...)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want.Hits, clWant.Hits) {
				t.Fatalf("query %d %s: index and cluster disagree before preparation", tr.ID, optName)
			}
			rerank := optName == "exact rerank"
			for variant, q := range variants {
				if rerank && q.FingerprintOnly() {
					continue // pinned by TestQueryFromFingerprintRejectsRerank
				}
				// Twice per engine: the first call populates the query's
				// caches, the second exercises them.
				for pass := 0; pass < 2; pass++ {
					got, err := idx.SearchQuery(ctx, q, opts...)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got.Hits, want.Hits) {
						t.Fatalf("query %d %s %s pass %d: index SearchQuery = %+v, Search = %+v",
							tr.ID, optName, variant, pass, got.Hits, want.Hits)
					}
					clGot, err := cl.SearchQuery(ctx, q, opts...)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(clGot.Hits, clWant.Hits) {
						t.Fatalf("query %d %s %s pass %d: cluster SearchQuery diverges from Search",
							tr.ID, optName, variant, pass)
					}
				}
			}
		}
	}
}

// TestSearchQueryBatchMatchesSearchBatch pins the prepared batch path:
// SearchQueryBatch over prepared queries equals SearchBatch over the
// corresponding trajectories, positionally, on both engines — including
// a batch that repeats one *Query value.
func TestSearchQueryBatchMatchesSearchBatch(t *testing.T) {
	_, w := testWorld()
	idx := builtTestIndex(t)
	cl := builtTestCluster(t, 2)
	ctx := context.Background()
	opts := []geodabs.SearchOption{geodabs.WithMaxDistance(0.99), geodabs.WithLimit(5)}
	prepared := make([]*geodabs.Query, len(w.Queries))
	for i, tr := range w.Queries {
		prepared[i] = geodabs.NewQuery(tr.Points)
	}
	want, err := idx.SearchBatch(ctx, w.Queries, 4, opts...)
	if err != nil {
		t.Fatal(err)
	}
	got, err := idx.SearchQueryBatch(ctx, prepared, 4, opts...)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !reflect.DeepEqual(got[i].Hits, want[i].Hits) {
			t.Errorf("query %d: prepared batch diverges from trajectory batch", w.Queries[i].ID)
		}
	}
	clGot, err := cl.SearchQueryBatch(ctx, prepared, 4, opts...)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !reflect.DeepEqual(clGot[i].Hits, want[i].Hits) {
			t.Errorf("query %d: cluster prepared batch diverges", w.Queries[i].ID)
		}
	}
	// One *Query repeated across the whole batch: every position returns
	// the same ranking as a standalone search of it.
	one := prepared[0]
	repeated := make([]*geodabs.Query, 6)
	for i := range repeated {
		repeated[i] = one
	}
	rep, err := idx.SearchQueryBatch(ctx, repeated, 3, opts...)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rep {
		if !reflect.DeepEqual(r.Hits, want[0].Hits) {
			t.Errorf("repeated position %d diverges from standalone search", i)
		}
	}
	// A bad option still fails the whole batch up front.
	if _, err := idx.SearchQueryBatch(ctx, prepared, 2, geodabs.WithKNN(3), geodabs.WithLimit(3)); err == nil {
		t.Error("SearchQueryBatch accepted mutually exclusive options")
	}
}

// TestQueryFromFingerprintRejectsRerank pins the fingerprint-only rule:
// a Query without raw points rejects WithExactRerank with a pointed
// error, on both engines, while fingerprint-ranked searches work.
func TestQueryFromFingerprintRejectsRerank(t *testing.T) {
	_, w := testWorld()
	idx := builtTestIndex(t)
	cl := builtTestCluster(t, 2)
	ctx := context.Background()
	fp, err := geodabs.NewFingerprinter(geodabs.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	q := geodabs.QueryFromFingerprint(fp.Fingerprint(w.Queries[0].Points))
	if !q.FingerprintOnly() {
		t.Fatal("QueryFromFingerprint is not fingerprint-only")
	}
	if q.Points() != nil {
		t.Fatal("fingerprint-only query carries points")
	}
	for name, s := range map[string]geodabs.Searcher{"index": idx, "cluster": cl} {
		res, err := s.SearchQuery(ctx, q, geodabs.WithKNN(3))
		if err != nil || len(res.Hits) == 0 {
			t.Fatalf("%s: fingerprint-only search: %d hits, %v", name, len(res.Hits), err)
		}
		_, err = s.SearchQuery(ctx, q, geodabs.WithKNN(3), geodabs.WithExactRerank(geodabs.DTW))
		if err == nil || !strings.Contains(err.Error(), "fingerprint-only") {
			t.Errorf("%s: rerank of fingerprint-only query: %v, want pointed error", name, err)
		}
	}
	// A nil query fails cleanly rather than panicking.
	if _, err := idx.SearchQuery(ctx, nil); err == nil {
		t.Error("SearchQuery accepted a nil *Query")
	}
}

// TestWideQueryPreparedParity drives the >65535-term wide path on both
// engines through a fingerprint-only prepared query: the local index
// falls back to the document-at-a-time union scan and the coordinator to
// map-based accumulation, and the two must stay byte-identical (and
// stable across cache-warm repeats).
func TestWideQueryPreparedParity(t *testing.T) {
	_, w := testWorld()
	idx := builtTestIndex(t)
	cl := builtTestCluster(t, 2)
	ctx := context.Background()
	fp, err := geodabs.NewFingerprinter(geodabs.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Real terms (so the wide query has candidates) plus filler terms
	// pushing the cardinality past the 16-bit counter range.
	set := bitmap.New()
	for _, tr := range w.Dataset.Trajectories[:8] {
		set.OrInPlace(fp.Fingerprint(tr.Points).Set)
	}
	for v := uint32(0); set.Cardinality() <= 1<<16; v += 17 {
		set.Add(v)
	}
	q := geodabs.QueryFromFingerprint(&geodabs.Fingerprint{Set: set})
	for _, opts := range [][]geodabs.SearchOption{
		nil,
		{geodabs.WithLimit(10)},
		{geodabs.WithMaxDistance(0.9999), geodabs.WithKNN(5)},
	} {
		var prev []geodabs.Result
		for pass := 0; pass < 2; pass++ {
			got, err := idx.SearchQuery(ctx, q, opts...)
			if err != nil {
				t.Fatal(err)
			}
			clGot, err := cl.SearchQuery(ctx, q, opts...)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Hits, clGot.Hits) {
				t.Fatalf("wide query: index and cluster rankings diverge (opts %d, pass %d)", len(opts), pass)
			}
			if pass == 0 {
				prev = got.Hits
				if len(prev) == 0 {
					t.Fatal("wide query found no candidates; test workload broken")
				}
			} else if !reflect.DeepEqual(got.Hits, prev) {
				t.Fatalf("wide query unstable across cache-warm repeat")
			}
		}
	}
}

// TestQueryAcrossConfigurations exercises the lazy cache's re-derivation:
// one NewQuery value searched against a geodab index and a geohash-cell
// baseline index must match each engine's own trajectory search.
func TestQueryAcrossConfigurations(t *testing.T) {
	_, w := testWorld()
	ctx := context.Background()
	geodab := builtTestIndex(t)
	cell, err := geodabs.NewGeohashIndex(geodabs.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := cell.AddAll(w.Dataset, 4); err != nil {
		t.Fatal(err)
	}
	tr := w.Queries[0]
	q := geodabs.NewQuery(tr.Points)
	for _, engines := range [][2]*geodabs.Index{{geodab, cell}, {cell, geodab}} {
		for _, ix := range engines {
			want, err := ix.Search(ctx, tr, geodabs.WithLimit(5))
			if err != nil {
				t.Fatal(err)
			}
			got, err := ix.SearchQuery(ctx, q, geodabs.WithLimit(5))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Hits, want.Hits) {
				t.Fatalf("cross-configuration reuse diverges from the engine's own search")
			}
		}
	}
}

// TestClusterAnalyzeQuery pins AnalyzeQuery against Analyze and checks
// the cached plan serves repeated analyses.
func TestClusterAnalyzeQuery(t *testing.T) {
	_, w := testWorld()
	cl := builtTestCluster(t, 2)
	for _, tr := range w.Queries[:3] {
		want := cl.Analyze(tr)
		q := geodabs.NewQuery(tr.Points)
		if got := cl.AnalyzeQuery(q); got != want {
			t.Errorf("query %d: AnalyzeQuery = %+v, Analyze = %+v", tr.ID, got, want)
		}
		if got := cl.AnalyzeQuery(q); got != want { // cached plan path
			t.Errorf("query %d: repeated AnalyzeQuery = %+v, Analyze = %+v", tr.ID, got, want)
		}
	}
}

// TestPreparedQueryConcurrentReuse shares one *Query across SearchBatch
// workers while Upserts churn the engines underneath — the -race
// acceptance test for the query caches' synchronization. Results are not
// pinned (the data is mutating); every search must simply succeed.
func TestPreparedQueryConcurrentReuse(t *testing.T) {
	_, w := testWorld()
	idx := builtTestIndex(t)
	cl := builtTestCluster(t, 2)
	ctx := context.Background()
	one := geodabs.NewQuery(w.Queries[0].Points)
	batch := make([]*geodabs.Query, 24)
	for i := range batch {
		batch[i] = one
	}
	for name, engine := range map[string]interface {
		geodabs.Searcher
		geodabs.Mutator
	}{"index": idx, "cluster": cl} {
		var wg sync.WaitGroup
		stop := make(chan struct{})
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tr := w.Dataset.Trajectories[i%len(w.Dataset.Trajectories)]
				if err := engine.Upsert(ctx, tr); err != nil {
					t.Errorf("%s: Upsert: %v", name, err)
					return
				}
			}
		}()
		type batcher interface {
			SearchQueryBatch(ctx context.Context, qs []*geodabs.Query, workers int, opts ...geodabs.SearchOption) ([]*geodabs.SearchResult, error)
		}
		results, err := engine.(batcher).SearchQueryBatch(ctx, batch, 8, geodabs.WithLimit(5))
		close(stop)
		wg.Wait()
		if err != nil {
			t.Fatalf("%s: SearchQueryBatch under concurrent Upserts: %v", name, err)
		}
		if len(results) != len(batch) {
			t.Fatalf("%s: %d results for %d queries", name, len(results), len(batch))
		}
		for i, r := range results {
			if r == nil {
				t.Fatalf("%s: missing result at %d", name, i)
			}
		}
	}
}
